#include "session.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>

namespace qmh {
namespace api {

namespace detail {

/**
 * All mutable job state. Workers and handles synchronize on `mutex`;
 * the claim counter and the cancel flag are atomics so a worker can
 * claim-and-check without taking the lock, and the immutable fields
 * (experiments, seeds, columns) are published to the workers through
 * the pool's queue mutex.
 */
struct JobState
{
    // Immutable after submit().
    std::vector<std::unique_ptr<Experiment>> experiments;
    std::vector<std::string> columns;  ///< kind columns + "seed"
    std::vector<std::uint64_t> seeds;  ///< one per point
    std::size_t total = 0;
    std::function<void()> on_retire;   ///< post-retirement hook

    std::atomic<std::size_t> next_claim{0};
    std::atomic<bool> cancel{false};

    mutable std::mutex mutex;
    // Two wake channels so point retires do not ping-pong with a
    // thread blocked in wait(): `changed` signals streaming progress
    // (prefix advanced) and is only waited on by nextRow(), `retired`
    // signals job completion and is only waited on by wait(). On a
    // single-CPU host a shared condvar costs one context-switch
    // round-trip per point for a waiter that only cares about the
    // final retire.
    std::condition_variable changed;
    std::condition_variable retired;
    std::vector<std::vector<sweep::Cell>> rows;  ///< set when done
    std::vector<char> row_done;
    std::size_t prefix = 0;  ///< first index not (yet) completed
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;
    std::size_t cursor = 0;  ///< streaming position (< prefix)
    bool finished = false;
    std::optional<Error> failure;
};

namespace {

/** Retire point bookkeeping; call with the lock held. */
void
retireLocked(JobState &state)
{
    if (state.done + state.failed + state.skipped == state.total) {
        state.finished = true;
        state.retired.notify_all();
    }
    state.changed.notify_all();
}

/**
 * One worker's claim loop: pull the next unclaimed index, run it,
 * land the row. Exceptions (and wrong-width rows) become a typed
 * ExecutionFailed failure that cancels the rest of the job — they
 * never reach the pool, so a shared runner's wait() stays clean.
 */
void
runJobWorker(const std::shared_ptr<JobState> &state)
{
    for (;;) {
        const std::size_t i =
            state->next_claim.fetch_add(1, std::memory_order_relaxed);
        if (i >= state->total)
            return;
        if (state->cancel.load(std::memory_order_relaxed)) {
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                ++state->skipped;
                retireLocked(*state);
            }
            if (state->on_retire)
                state->on_retire();
            continue;
        }

        std::vector<sweep::Cell> row;
        std::optional<Error> failure;
        try {
            Random rng(state->seeds[i]);
            row = state->experiments[i]->run(rng);
            if (row.size() + 1 != state->columns.size())
                failure = Error{
                    ErrorCode::ExecutionFailed,
                    "experiment '" + state->experiments[i]->name() +
                        "' returned " + std::to_string(row.size()) +
                        " cells for " +
                        std::to_string(state->columns.size() - 1) +
                        " columns",
                    {}};
            else
                row.emplace_back(state->seeds[i]);
        } catch (const std::exception &e) {
            failure = Error{ErrorCode::ExecutionFailed,
                            std::string("experiment threw: ") +
                                e.what(),
                            {}};
        } catch (...) {
            failure = Error{ErrorCode::ExecutionFailed,
                            "experiment threw a non-std exception",
                            {}};
        }

        {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (failure) {
                if (!state->failure)
                    state->failure = std::move(failure);
                state->cancel.store(true, std::memory_order_relaxed);
                ++state->failed;  // it ran — that is not "skipped"
            } else {
                state->rows[i] = std::move(row);
                state->row_done[i] = 1;
                ++state->done;
                while (state->prefix < state->total &&
                       state->row_done[state->prefix])
                    ++state->prefix;
            }
            retireLocked(*state);
        }
        if (state->on_retire)
            state->on_retire();
    }
}

} // namespace
} // namespace detail

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

const std::vector<std::string> &
JobHandle::columns() const
{
    return _state->columns;
}

std::size_t
JobHandle::totalPoints() const
{
    return _state->total;
}

JobProgress
JobHandle::progress() const
{
    std::lock_guard<std::mutex> lock(_state->mutex);
    JobProgress progress;
    progress.done = _state->done;
    progress.failed = _state->failed;
    progress.skipped = _state->skipped;
    progress.total = _state->total;
    progress.streamable = _state->prefix;
    progress.cancel_requested =
        _state->cancel.load(std::memory_order_relaxed);
    progress.finished = _state->finished;
    return progress;
}

void
JobHandle::cancel()
{
    _state->cancel.store(true, std::memory_order_relaxed);
}

std::optional<std::vector<sweep::Cell>>
JobHandle::nextRow()
{
    auto &state = *_state;
    std::unique_lock<std::mutex> lock(state.mutex);
    state.changed.wait(lock, [&state]() {
        return state.cursor < state.prefix || state.finished;
    });
    if (state.cursor < state.prefix)
        return state.rows[state.cursor++];
    return std::nullopt;
}

RowPoll
JobHandle::pollRow(std::vector<sweep::Cell> &row)
{
    auto &state = *_state;
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.cursor < state.prefix) {
        row = state.rows[state.cursor++];
        return RowPoll::Ready;
    }
    return state.finished ? RowPoll::End : RowPoll::Pending;
}

JobResult
JobHandle::wait()
{
    auto &state = *_state;
    std::unique_lock<std::mutex> lock(state.mutex);
    state.retired.wait(lock, [&state]() { return state.finished; });

    JobResult result;
    result.table = sweep::ResultTable(state.columns);
    for (std::size_t i = 0; i < state.prefix; ++i)
        result.table.addRow(state.rows[i]);
    result.completed = state.prefix;
    result.executed = state.done + state.failed;
    result.skipped = state.skipped;
    result.cancelled = state.cancel.load(std::memory_order_relaxed);
    result.failure = state.failure;
    return result;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(sweep::SweepOptions options)
    : _owned(std::make_unique<sweep::SweepRunner>(options)),
      _pool(&_owned->pool()), _base_seed(options.base_seed)
{
}

Session::Session(sweep::SweepRunner &runner)
    : _pool(&runner.pool()), _base_seed(runner.options().base_seed)
{
}

Session::~Session()
{
    std::lock_guard<std::mutex> lock(_jobs_mutex);
    for (const auto &weak : _jobs)
        if (const auto state = weak.lock())
            state->cancel.store(true, std::memory_order_relaxed);
}

unsigned
Session::threadCount() const
{
    return _pool->threadCount();
}

Outcome<JobHandle>
Session::submit(const std::vector<ExperimentSpec> &specs,
                SubmitOptions options)
{
    // validateExperiments covers validate() and the column schema,
    // so startJob must not re-check (submissions would pay twice).
    auto experiments = validateExperiments(specs);
    if (!experiments.ok())
        return experiments.error();
    return startJob(std::move(experiments).value(),
                    std::move(options));
}

Outcome<JobHandle>
Session::submit(std::vector<std::unique_ptr<Experiment>> experiments,
                SubmitOptions options)
{
    if (auto error = checkExperimentBatch(experiments))
        return std::move(*error);
    return startJob(std::move(experiments), std::move(options));
}

Outcome<JobHandle>
Session::startJob(std::vector<std::unique_ptr<Experiment>> experiments,
                  SubmitOptions options)
{
    auto state = std::make_shared<detail::JobState>();
    state->total = experiments.size();
    if (experiments.empty()) {
        state->columns = {"spec", "seed"};
    } else {
        state->columns = experiments.front()->columns();
        state->columns.emplace_back("seed");
    }

    if (!options.seeds.empty() &&
        options.seeds.size() != experiments.size())
        return Error{ErrorCode::BadSeeds,
                     "got " + std::to_string(options.seeds.size()) +
                         " explicit seeds for " +
                         std::to_string(experiments.size()) + " specs",
                     {}};
    if (options.seeds.empty()) {
        const std::uint64_t base =
            options.base_seed.value_or(_base_seed);
        state->seeds.reserve(experiments.size());
        for (std::size_t i = 0; i < experiments.size(); ++i)
            state->seeds.push_back(sweep::pointSeed(base, i));
    } else {
        state->seeds = std::move(options.seeds);
    }

    state->experiments = std::move(experiments);
    state->on_retire = std::move(options.on_retire);
    state->rows.resize(state->total);
    state->row_done.assign(state->total, 0);
    state->finished = state->total == 0;

    {
        std::lock_guard<std::mutex> lock(_jobs_mutex);
        // Forget retired jobs so a long-lived session does not grow.
        std::erase_if(_jobs, [](const auto &weak) {
            return weak.expired();
        });
        _jobs.push_back(state);
    }

    const std::size_t n_workers =
        std::min<std::size_t>(_pool->threadCount(), state->total);
    for (std::size_t t = 0; t < n_workers; ++t)
        _pool->submit([state]() { detail::runJobWorker(state); });
    return JobHandle(std::move(state));
}

} // namespace api
} // namespace qmh
