#include "workload.hh"

#include <cmath>

#include "common/logging.hh"
#include "gen/draper.hh"
#include "gen/qft.hh"
#include "gen/random_circuit.hh"
#include "gen/ripple.hh"

namespace qmh {
namespace api {

namespace {

/** Cacheable mask over the two n-bit data registers of an adder. */
std::vector<bool>
adderDataMask(const gen::AdderLayout &layout, bool mask_data)
{
    if (!mask_data)
        return {};
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * layout.bits; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    return mask;
}

Workload
buildDraper(const ExperimentSpec &spec, Random &)
{
    Workload w;
    gen::AdderLayout layout;
    w.program = gen::draperAdder(spec.n, true, &layout,
                                 gen::UncomputeMode::CarriesLeftDirty);
    w.cacheable = adderDataMask(layout, spec.mask_data);
    w.pe_qubits = adderPeQubits(spec.n);
    return w;
}

Workload
buildRipple(const ExperimentSpec &spec, Random &)
{
    Workload w;
    gen::AdderLayout layout;
    w.program = gen::rippleAdder(spec.n, true, &layout);
    w.cacheable = adderDataMask(layout, spec.mask_data);
    w.pe_qubits = adderPeQubits(spec.n);
    return w;
}

Workload
buildModExp(const ExperimentSpec &spec, Random &)
{
    // Steady-state modular exponentiation at circuit granularity:
    // `reps` back-to-back additions on the same registers, the reuse
    // pattern the warm-start cache measurements model.
    Workload w;
    gen::AdderLayout layout;
    const auto adder =
        gen::draperAdder(spec.n, true, &layout,
                         gen::UncomputeMode::CarriesLeftDirty);
    circuit::Program repeated("modexp" + std::to_string(spec.n),
                              layout.total_qubits);
    for (int rep = 0; rep < spec.reps; ++rep)
        for (std::size_t i = 0; i < adder.size(); ++i)
            repeated.append(adder[i]);
    w.program = std::move(repeated);
    w.cacheable = adderDataMask(layout, spec.mask_data);
    w.pe_qubits = adderPeQubits(spec.n);
    return w;
}

Workload
buildQft(const ExperimentSpec &spec, Random &)
{
    Workload w;
    w.program = gen::qft(spec.n, true);
    w.pe_qubits = static_cast<unsigned>(spec.n);
    return w;
}

Workload
buildRandom(const ExperimentSpec &spec, Random &rng)
{
    Workload w;
    w.program = gen::randomMixed(spec.n, spec.gates, rng);
    w.pe_qubits = static_cast<unsigned>(spec.n);
    return w;
}

const std::vector<WorkloadGenerator> registry = {
    {"draper", "logarithmic-depth carry-lookahead adder (paper core)",
     buildDraper},
    {"ripple", "linear-depth ripple-carry adder (baseline)",
     buildRipple},
    {"modexp", "repeated Draper additions (steady-state mod-exp)",
     buildModExp},
    {"qft", "quantum Fourier transform with bit-reversal swaps",
     buildQft},
    {"random", "random mixed logical circuit (seeded per point)",
     buildRandom},
};

} // namespace

const std::vector<WorkloadGenerator> &
workloadRegistry()
{
    return registry;
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &generator : registry)
            out.push_back(generator.name);
        return out;
    }();
    return names;
}

const WorkloadGenerator *
findWorkload(std::string_view name)
{
    for (const auto &generator : registry)
        if (generator.name == name)
            return &generator;
    return nullptr;
}

Workload
buildWorkload(const ExperimentSpec &spec, Random &rng)
{
    const auto *generator = findWorkload(spec.workload);
    if (!generator)
        // qmh-lint: allow(typed-errors): unreachable post-validation — every request path rejects unknown workloads with InvalidSpec first
        qmh_panic("buildWorkload: unknown workload '", spec.workload,
                  "'");
    return generator->build(spec, rng);
}

unsigned
adderPeQubits(int n_bits)
{
    // Table-4 anchor points: blocks available to an n-bit adder.
    switch (n_bits) {
      case 32:   return 9 * 9;
      case 64:   return 9 * 16;
      case 128:  return 9 * 25;
      case 256:  return 9 * 49;
      case 512:  return 9 * 81;
      case 1024: return 9 * 121;
      default: {
          // Off-table widths: the table's side lengths grow like
          // ~0.35 * sqrt(n); round to the nearest square grid.
          const double side = std::max(
              2.0, std::round(0.35 * std::sqrt(
                                  static_cast<double>(n_bits))));
          return static_cast<unsigned>(9.0 * side * side);
      }
    }
}

} // namespace api
} // namespace qmh
