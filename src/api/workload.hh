/**
 * @file
 * Registry of named workload generators.
 *
 * A workload is a generated logical circuit plus the metadata the
 * experiments need to interpret it: which qubits are architectural
 * data (cacheable across the memory hierarchy, vs compute-block-local
 * scratch) and the processing-element count used to auto-size caches.
 * Adding a workload is one registry entry; every spec-driven CLI,
 * bench and sweep picks it up by name.
 */

#ifndef QMH_API_WORKLOAD_HH
#define QMH_API_WORKLOAD_HH

#include <string>
#include <vector>

#include "api/spec.hh"
#include "circuit/workload.hh"
#include "common/random.hh"

namespace qmh {
namespace api {

/**
 * A generated workload with its architectural metadata. The struct
 * itself lives at the circuit layer (circuit/workload.hh) so engines
 * below the facade can consume one without depending upward on api.
 */
using Workload = circuit::Workload;

/** One named generator. */
struct WorkloadGenerator
{
    std::string name;
    std::string description;
    Workload (*build)(const ExperimentSpec &spec, Random &rng);
};

/** All registered generators, in registration order. */
const std::vector<WorkloadGenerator> &workloadRegistry();

/** Names of every registered generator, in registration order. */
const std::vector<std::string> &workloadNames();

/** Lookup by name; nullptr on unknown. */
const WorkloadGenerator *findWorkload(std::string_view name);

/**
 * Build the workload named by @p spec.workload (panics on unknown
 * name; validate the spec first for a recoverable diagnostic).
 */
Workload buildWorkload(const ExperimentSpec &spec, Random &rng);

/**
 * Paper-calibrated processing-element qubit count for an n-bit adder
 * workload: 9 logical qubits per compute block over the Table-4 block
 * counts (interpolated geometrically off the table's sizes).
 */
unsigned adderPeQubits(int n_bits);

} // namespace api
} // namespace qmh

#endif // QMH_API_WORKLOAD_HH
