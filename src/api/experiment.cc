#include "experiment.hh"

#include <algorithm>
#include <cmath>

#include "api/session.hh"
#include "api/workload.hh"
#include "common/logging.hh"
#include "cqla/hierarchy_sim.hh"
#include "ecc/montecarlo.hh"
#include "net/bandwidth.hh"
#include "trace/engine.hh"

namespace qmh {
namespace api {

namespace {

void
checkRange(std::vector<std::string> &errors, bool ok,
           const char *message)
{
    if (!ok)
        errors.emplace_back(message);
}

/**
 * Range checks of the banked-memory knobs, shared by the two kinds
 * that charge traffic through sim::BankedMemory. The spec parser
 * bounds them, but a C++-built spec can hold 0, which the component
 * refuses fatally — catch it here so it stays a typed diagnostic.
 */
void
checkMemoryKnobs(std::vector<std::string> &errors,
                 const ExperimentSpec &spec, const char *kind)
{
    if (spec.mem_banks < 1)
        errors.push_back(std::string(kind) +
                         ": mem_banks must be >= 1");
    if (spec.mem_ports < 1)
        errors.push_back(std::string(kind) +
                         ": mem_ports must be >= 1");
    if (spec.mem_buffer < 1)
        errors.push_back(std::string(kind) +
                         ": mem_buffer must be >= 1");
}

/**
 * The shared cache auto-sizing rule of the cache and trace kinds:
 * capacity == 0 resolves to capacity_x times the workload's PE qubit
 * count. Truncate, don't round: the paper-figure capacities (e.g.
 * 1.5 x PE on the fig-7 PE counts) have always been the floor of the
 * product.
 */
std::uint64_t
resolveCapacity(const ExperimentSpec &spec, const Workload &workload)
{
    if (spec.capacity != 0)
        return spec.capacity;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(spec.capacity_x *
                                      workload.pe_qubits));
}

/** Event-driven CQLA memory-hierarchy simulation (Table 5). */
class HierarchyExperiment final : public Experiment
{
  public:
    explicit HierarchyExperiment(ExperimentSpec spec)
        : Experiment(std::move(spec))
    {
    }

    std::string name() const override { return "hierarchy"; }

    std::vector<std::string> validate() const override
    {
        std::vector<std::string> errors;
        checkRange(errors, _spec.n >= 8 && _spec.n <= 4096,
                   "hierarchy: n must be in [8, 4096]");
        // transfers = 0 would divide by zero in the wave computation;
        // the parser bounds it but a C++-built spec can hold 0.
        checkRange(errors, _spec.transfers >= 1,
                   "hierarchy: transfers must be >= 1");
        checkRange(errors, _spec.adders >= 1,
                   "hierarchy: adders must be >= 1");
        checkRange(errors,
                   _spec.l1_fraction > 0.0 && _spec.l1_fraction <= 1.0,
                   "hierarchy: l1_fraction must be in (0, 1]");
        checkRange(errors,
                   _spec.chain_fraction >= 0.0 &&
                       _spec.chain_fraction <= 1.0,
                   "hierarchy: chain_fraction must be in [0, 1]");
        checkRange(errors,
                   _spec.workload == "draper" ||
                       _spec.workload == "modexp",
                   "hierarchy: workload must be draper or modexp "
                   "(an adder stream)");
        checkMemoryKnobs(errors, _spec, "hierarchy");
        return errors;
    }

    std::vector<std::string> columns() const override
    {
        return {"spec", "code", "n", "transfers", "blocks",
                "mem_banks", "mem_ports",
                "l1_fraction", "makespan_s", "baseline_s",
                "makespan_speedup", "mean_adder_speedup",
                "level1_adds", "level2_adds", "transfer_utilization",
                "bank_conflicts", "mem_stall_ticks", "mem_peak_queue",
                "mem_mean_queue", "mem_utilization",
                "events_executed"};
    }

    std::vector<sweep::Cell> run(Random &) const override
    {
        cqla::HierarchySimConfig config;
        config.code = _spec.code;
        config.n_bits = _spec.n;
        config.parallel_transfers = _spec.transfers;
        config.blocks = _spec.blocks;
        config.total_adders = _spec.adders;
        config.level1_fraction = _spec.l1_fraction;
        config.chain_dependent_fraction = _spec.chain_fraction;
        config.mem_banks = _spec.mem_banks;
        config.mem_ports = _spec.mem_ports;
        config.mem_buffer =
            static_cast<std::size_t>(_spec.mem_buffer);
        config.cycles_per_line = _spec.cycles_per_line;
        const auto result =
            cqla::runHierarchySim(config, _spec.params());
        return {printSpec(_spec),
                ecc::Code::byKind(_spec.code).name(),
                _spec.n,
                _spec.transfers,
                _spec.blocks,
                _spec.mem_banks,
                _spec.mem_ports,
                _spec.l1_fraction,
                result.makespan_s,
                result.baseline_s,
                result.makespan_speedup,
                result.mean_adder_speedup,
                result.level1_adds,
                result.level2_adds,
                result.transfer_utilization,
                result.bank_conflicts,
                result.mem_stall_ticks,
                result.mem_peak_queue,
                result.mem_mean_queue,
                result.mem_utilization,
                result.events_executed};
    }
};

/** Quantum cache simulation over a registry workload (Fig. 7). */
class CacheExperiment final : public Experiment
{
  public:
    explicit CacheExperiment(ExperimentSpec spec)
        : Experiment(std::move(spec))
    {
    }

    std::string name() const override { return "cache"; }

    std::vector<std::string> validate() const override
    {
        std::vector<std::string> errors;
        if (!findWorkload(_spec.workload))
            errors.push_back(
                "cache: " + unknownNameDiagnostic("workload",
                                                  _spec.workload,
                                                  workloadNames()));
        checkRange(errors, _spec.n >= 2 && _spec.n <= 4096,
                   "cache: n must be in [2, 4096]");
        checkRange(errors, _spec.capacity_x > 0.0,
                   "cache: capacity_x must be > 0");
        checkRange(errors,
                   _spec.capacity == 0 || _spec.capacity <= 1000000,
                   "cache: capacity must be <= 1000000");
        return errors;
    }

    std::vector<std::string> columns() const override
    {
        return {"spec", "workload", "n", "capacity", "policy", "warm",
                "accesses", "hits", "misses", "evictions", "hit_rate"};
    }

    std::vector<sweep::Cell> run(Random &rng) const override
    {
        const auto workload = buildWorkload(_spec, rng);
        const auto capacity = resolveCapacity(_spec, workload);
        const auto result = cache::simulateCache(
            workload.program, static_cast<std::size_t>(capacity),
            _spec.policy, _spec.warm, workload.cacheable);
        return {printSpec(_spec),
                _spec.workload,
                _spec.n,
                capacity,
                cache::fetchPolicyName(_spec.policy),
                _spec.warm ? std::int64_t(1) : std::int64_t(0),
                result.accesses,
                result.hits,
                result.misses,
                result.evictions,
                result.hitRate()};
    }
};

/** Superblock perimeter-bandwidth supply/demand (Fig. 6b). */
class BandwidthExperiment final : public Experiment
{
  public:
    explicit BandwidthExperiment(ExperimentSpec spec)
        : Experiment(std::move(spec))
    {
    }

    std::string name() const override { return "bandwidth"; }

    std::vector<std::string> validate() const override
    {
        std::vector<std::string> errors;
        checkRange(errors, _spec.level >= 1 && _spec.level <= 4,
                   "bandwidth: level must be in [1, 4]");
        checkRange(errors,
                   _spec.utilization > 0.0 && _spec.utilization <= 1.0,
                   "bandwidth: utilization must be in (0, 1]");
        checkRange(errors, _spec.blocks <= 100000,
                   "bandwidth: blocks must be <= 100000");
        return errors;
    }

    std::vector<std::string> columns() const override
    {
        return {"spec", "code", "level", "blocks", "utilization",
                "required_worst_qps", "required_draper_qps",
                "available_qps", "crossover_blocks"};
    }

    std::vector<sweep::Cell> run(Random &) const override
    {
        const net::BandwidthModel model(ecc::Code::byKind(_spec.code),
                                        _spec.level, _spec.params());
        const double blocks = static_cast<double>(_spec.blocks);
        return {printSpec(_spec),
                ecc::Code::byKind(_spec.code).name(),
                _spec.level,
                _spec.blocks,
                _spec.utilization,
                model.requiredWorstCase(blocks),
                model.requiredDraper(blocks, _spec.utilization),
                model.availablePerSuperblock(blocks),
                model.crossoverBlocks(4096, _spec.utilization)};
    }
};

/** Error-correction Monte Carlo vs the analytic model (Table 2). */
class MonteCarloExperiment final : public Experiment
{
  public:
    explicit MonteCarloExperiment(ExperimentSpec spec)
        : Experiment(std::move(spec))
    {
    }

    std::string name() const override { return "montecarlo"; }

    std::vector<std::string> validate() const override
    {
        std::vector<std::string> errors;
        checkRange(errors, _spec.level >= 1 && _spec.level <= 3,
                   "montecarlo: level must be in [1, 3] (cost grows "
                   "as n^level per trial)");
        checkRange(errors, _spec.p0 > 0.0 && _spec.p0 <= 0.25,
                   "montecarlo: p0 must be in (0, 0.25]");
        checkRange(errors,
                   _spec.trials >= 1 && _spec.trials <= 100000000,
                   "montecarlo: trials must be in [1, 1e8]");
        checkRange(errors,
                   _spec.noise_factor > 0.0 &&
                       _spec.noise_factor <= 100.0,
                   "montecarlo: noise_factor must be in (0, 100]");
        return errors;
    }

    std::vector<std::string> columns() const override
    {
        return {"spec", "code", "level", "p0", "trials", "failures",
                "mc_rate", "mc_std_error", "analytic_rate"};
    }

    std::vector<sweep::Cell> run(Random &rng) const override
    {
        const ecc::EcMonteCarlo mc(ecc::Code::byKind(_spec.code),
                                   _spec.noise_factor);
        const auto estimate =
            mc.estimate(_spec.level, _spec.p0, _spec.trials, rng);
        return {printSpec(_spec),
                ecc::Code::byKind(_spec.code).name(),
                _spec.level,
                _spec.p0,
                estimate.trials,
                estimate.failures,
                estimate.rate,
                estimate.std_error,
                mc.analytic(_spec.level, _spec.p0)};
    }
};

/**
 * Trace-driven hierarchy pipeline: any registry workload (or a text-
 * format circuit wrapped in an api::Workload) list-scheduled onto
 * level-1 blocks with per-instruction cache residency and transfer-
 * channel charging (trace/engine.hh).
 */
class TraceExperiment final : public Experiment
{
  public:
    explicit TraceExperiment(ExperimentSpec spec)
        : Experiment(std::move(spec))
    {
    }

    std::string name() const override { return "trace"; }

    std::vector<std::string> validate() const override
    {
        std::vector<std::string> errors;
        if (!findWorkload(_spec.workload))
            errors.push_back(
                "trace: " + unknownNameDiagnostic("workload",
                                                  _spec.workload,
                                                  workloadNames()));
        checkRange(errors, _spec.n >= 2 && _spec.n <= 4096,
                   "trace: n must be in [2, 4096]");
        // The spec parser bounds transfers to [1, 100000], but a spec
        // built in C++ can hold 0, which the engine refuses fatally —
        // catch it here so it stays a typed diagnostic.
        checkRange(errors, _spec.transfers >= 1,
                   "trace: transfers must be >= 1");
        checkRange(errors, _spec.capacity_x > 0.0,
                   "trace: capacity_x must be > 0");
        checkRange(errors,
                   _spec.capacity == 0 || _spec.capacity <= 1000000,
                   "trace: capacity must be <= 1000000");
        checkRange(errors, _spec.gates <= 1000000,
                   "trace: gates must be <= 1000000 (event-driven "
                   "cost grows per gate)");
        checkMemoryKnobs(errors, _spec, "trace");
        return errors;
    }

    std::vector<std::string> columns() const override
    {
        return {"spec", "workload", "n", "blocks", "transfers",
                "capacity", "mem_banks", "mem_ports",
                "makespan_s", "baseline_s", "speedup",
                "accesses", "hits", "misses", "evictions", "hit_rate",
                "transfer_utilization",
                "mem_requests", "writebacks", "bank_conflicts",
                "mem_stall_ticks", "mem_peak_queue", "mem_mean_queue",
                "mem_utilization",
                "block_utilization",
                "peak_in_flight", "mean_in_flight",
                "events_executed"};
    }

    std::vector<sweep::Cell> run(Random &rng) const override
    {
        const auto workload = buildWorkload(_spec, rng);
        const auto capacity = resolveCapacity(_spec, workload);
        trace::TraceConfig config;
        config.code = _spec.code;
        config.blocks = _spec.blocks;
        config.transfers = _spec.transfers;
        config.capacity = static_cast<std::size_t>(capacity);
        config.mem_banks = _spec.mem_banks;
        config.mem_ports = _spec.mem_ports;
        config.mem_buffer =
            static_cast<std::size_t>(_spec.mem_buffer);
        config.cycles_per_line = _spec.cycles_per_line;
        const auto result =
            trace::runTrace(workload, config, _spec.params());
        return {printSpec(_spec),
                _spec.workload,
                _spec.n,
                _spec.blocks,
                _spec.transfers,
                capacity,
                _spec.mem_banks,
                _spec.mem_ports,
                result.makespan_s,
                result.baseline_s,
                result.speedup,
                result.accesses,
                result.hits,
                result.misses,
                result.evictions,
                result.hit_rate,
                result.transfer_utilization,
                result.mem_requests,
                result.writebacks,
                result.bank_conflicts,
                result.mem_stall_ticks,
                result.mem_peak_queue,
                result.mem_mean_queue,
                result.mem_utilization,
                result.block_utilization,
                result.peak_in_flight,
                result.mean_in_flight,
                result.events_executed};
    }
};

} // namespace

std::unique_ptr<Experiment>
makeExperiment(const ExperimentSpec &spec)
{
    switch (spec.kind) {
      case ExperimentKind::Hierarchy:
        return std::make_unique<HierarchyExperiment>(spec);
      case ExperimentKind::Cache:
        return std::make_unique<CacheExperiment>(spec);
      case ExperimentKind::Bandwidth:
        return std::make_unique<BandwidthExperiment>(spec);
      case ExperimentKind::MonteCarlo:
        return std::make_unique<MonteCarloExperiment>(spec);
      case ExperimentKind::Trace:
        return std::make_unique<TraceExperiment>(spec);
    }
    // qmh-lint: allow(typed-errors): exhaustive-switch guard — an out-of-range enum is memory corruption, not a request failure
    qmh_panic("makeExperiment: bad ExperimentKind ",
              static_cast<int>(spec.kind));
}

std::optional<Error>
checkExperimentBatch(
    const std::vector<std::unique_ptr<Experiment>> &experiments)
{
    std::vector<std::string> invalid;
    for (std::size_t i = 0; i < experiments.size(); ++i)
        for (const auto &diagnostic : experiments[i]->validate())
            invalid.push_back("spec " + std::to_string(i) + " ('" +
                              printSpec(experiments[i]->spec()) +
                              "'): " + diagnostic);
    if (!invalid.empty())
        return Error{ErrorCode::InvalidSpec,
                     std::to_string(invalid.size()) +
                         " validation error(s) in the submitted specs",
                     std::move(invalid)};
    for (const auto &experiment : experiments)
        if (experiment->columns() != experiments.front()->columns())
            return Error{
                ErrorCode::MixedKinds,
                "mixed experiment kinds in one sweep (" +
                    experiments.front()->name() + " vs " +
                    experiment->name() + ")",
                {}};
    return std::nullopt;
}

Outcome<std::vector<std::unique_ptr<Experiment>>>
validateExperiments(const std::vector<ExperimentSpec> &specs)
{
    std::vector<std::unique_ptr<Experiment>> experiments;
    experiments.reserve(specs.size());
    for (const auto &spec : specs)
        experiments.push_back(makeExperiment(spec));
    if (auto error = checkExperimentBatch(experiments))
        return std::move(*error);
    return experiments;
}

std::vector<std::unique_ptr<Experiment>>
makeValidatedExperiments(const std::vector<ExperimentSpec> &specs)
{
    auto experiments = validateExperiments(specs);
    if (!experiments.ok())
        // qmh-lint: allow(typed-errors): documented legacy panic surface — validateExperiments is the typed twin callers migrate to
        qmh_panic("makeValidatedExperiments: ",
                  experiments.error().describe());
    return std::move(experiments).value();
}

sweep::ResultTable
runSpecSweep(sweep::SweepRunner &runner,
             const std::vector<ExperimentSpec> &specs)
{
    Session session(runner);
    auto submitted = session.submit(specs);
    if (!submitted.ok())
        // qmh-lint: allow(typed-errors): documented legacy panic surface — Session::submit is the typed twin callers migrate to
        qmh_panic("runSpecSweep: ", submitted.error().describe());
    auto result = submitted.value().wait();
    if (result.failure)
        // qmh-lint: allow(typed-errors): documented legacy panic surface — Session::submit is the typed twin callers migrate to
        qmh_panic("runSpecSweep: ", result.failure->describe());
    return std::move(result.table);
}

sweep::ResultTable
runSpecSweep(const std::vector<ExperimentSpec> &specs,
             const sweep::SweepOptions &options)
{
    sweep::SweepRunner runner(options);
    return runSpecSweep(runner, specs);
}

} // namespace api
} // namespace qmh
