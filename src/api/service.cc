#include "service.hh"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/json.hh"
#include "sweep/emit.hh"
#include "sweep/sweep.hh"

namespace qmh {
namespace api {

namespace {

Error
badRequest(std::string message)
{
    return Error{ErrorCode::BadRequest, std::move(message), {}};
}

/** Non-negative integral JSON number (or decimal string) as u64. */
std::optional<std::uint64_t>
asUInt(const json::Value &value)
{
    if (value.isString())
        return parseUInt(value.string());
    if (!value.isNumber())
        return std::nullopt;
    const double d = value.number();
    if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0)
        return std::nullopt;  // 2^53: past that, doubles drop seeds
    return static_cast<std::uint64_t>(d);
}

void
writeError(std::ostream &out, const std::string &id,
           const Error &error)
{
    out << recordError(id, error) << std::endl;
}

} // namespace

std::string
recordAccepted(const std::string &id, std::size_t total,
               const std::vector<std::string> &columns)
{
    std::ostringstream out;
    out << "{\"type\":\"accepted\",\"id\":" << sweep::jsonQuote(id)
        << ",\"total\":" << total << ",\"columns\":[";
    for (std::size_t c = 0; c < columns.size(); ++c)
        out << (c ? "," : "") << sweep::jsonQuote(columns[c]);
    out << "]}";
    return out.str();
}

std::string
recordRow(const std::string &id, std::size_t index,
          const std::vector<std::string> &columns,
          const std::vector<sweep::Cell> &cells)
{
    std::ostringstream out;
    out << "{\"type\":\"row\",\"id\":" << sweep::jsonQuote(id)
        << ",\"index\":" << index << ",\"cells\":{";
    for (std::size_t c = 0; c < cells.size(); ++c)
        out << (c ? "," : "") << sweep::jsonQuote(columns[c]) << ":"
            << cells[c].toJson();
    out << "}}";
    return out.str();
}

std::string
recordError(const std::string &id, const Error &error)
{
    std::ostringstream out;
    out << "{\"type\":\"error\",\"id\":" << sweep::jsonQuote(id)
        << ",\"code\":\"" << errorCodeName(error.code)
        << "\",\"message\":" << sweep::jsonQuote(error.message)
        << ",\"details\":[";
    for (std::size_t i = 0; i < error.details.size(); ++i)
        out << (i ? "," : "") << sweep::jsonQuote(error.details[i]);
    out << "]}";
    return out.str();
}

std::string
recordDone(const std::string &id, std::size_t rows, std::size_t total,
           bool cancelled)
{
    std::ostringstream out;
    out << "{\"type\":\"done\",\"id\":" << sweep::jsonQuote(id)
        << ",\"rows\":" << rows << ",\"total\":" << total
        << ",\"cancelled\":" << (cancelled ? "true" : "false") << "}";
    return out.str();
}

std::vector<std::uint64_t>
requestSeeds(const ServiceRequest &request, std::uint64_t session_base)
{
    if (request.seed_mode == SeedMode::Index)
        return {};
    const std::uint64_t base = request.seed.value_or(session_base);
    std::vector<std::uint64_t> seeds;
    seeds.reserve(request.specs.size());
    for (const auto &spec : request.specs)
        // sweep::keySeed over the canonical spec string — the same
        // derivation opt::specSeed forwards to, so service rows stay
        // interchangeable with optimizer cache entries.
        seeds.push_back(sweep::keySeed(base, printSpec(spec)));
    return seeds;
}

Outcome<ServiceRequest>
parseServiceRequest(const std::string &line)
{
    const auto parsed = json::parse(line);
    if (!parsed.ok())
        return badRequest("malformed JSON at byte " +
                          std::to_string(parsed.offset) + ": " +
                          parsed.error);
    return decodeServiceRequest(parsed.value);
}

Outcome<ServiceRequest>
decodeServiceRequest(const json::Value &root)
{
    if (!root.isObject())
        return badRequest("request must be a JSON object");

    ServiceRequest request;
    if (const auto *id = root.find("id")) {
        if (!id->isString())
            return badRequest("'id' must be a string");
        request.id = id->string();
    }
    if (const auto *op = root.find("op")) {
        if (!op->isString())
            return badRequest(
                "unknown op (\"sweep\" and \"shutdown\" are served)");
        if (op->string() == "shutdown")
            request.op = ServiceOp::Shutdown;
        else if (op->string() != "sweep")
            return badRequest(
                "unknown op (\"sweep\" and \"shutdown\" are served)");
    }
    if (request.op == ServiceOp::Shutdown)
        return request;  // no further fields apply

    if (const auto *seed = root.find("seed")) {
        const auto value = asUInt(*seed);
        if (!value)
            return badRequest("'seed' must be a non-negative integer");
        request.seed = *value;
    }
    if (const auto *mode = root.find("seed_mode")) {
        if (mode->isString() && mode->string() == "index")
            request.seed_mode = SeedMode::Index;
        else if (mode->isString() && mode->string() == "spec")
            request.seed_mode = SeedMode::Spec;
        else
            return badRequest(
                "'seed_mode' must be \"index\" or \"spec\"");
    }
    if (const auto *limit = root.find("limit")) {
        const auto value = asUInt(*limit);
        if (!value)
            return badRequest(
                "'limit' must be a non-negative integer");
        request.limit = static_cast<std::size_t>(*value);
    }

    const auto *specs = root.find("specs");
    if (!specs || !specs->isArray())
        return badRequest("'specs' must be an array of spec strings");
    std::vector<std::string> diagnostics;
    for (std::size_t i = 0; i < specs->items().size(); ++i) {
        const auto &item = specs->items()[i];
        if (!item.isString())
            return badRequest("specs[" + std::to_string(i) +
                              "] is not a string");
        const auto spec = parseSpec(item.string());
        for (const auto &problem : spec.errors)
            diagnostics.push_back("specs[" + std::to_string(i) +
                                  "]: " + problem);
        request.specs.push_back(spec.spec);
    }
    if (!diagnostics.empty())
        return Error{ErrorCode::InvalidSpec,
                     std::to_string(diagnostics.size()) +
                         " spec parse error(s)",
                     std::move(diagnostics)};
    return request;
}

void
serveRequest(Session &session, const ServiceRequest &request,
             std::ostream &out, ServiceStats &stats)
{
    SubmitOptions options;
    options.base_seed = request.seed;
    options.seeds = requestSeeds(request, session.baseSeed());
    auto submitted = session.submit(request.specs, std::move(options));
    if (!submitted.ok()) {
        writeError(out, request.id, submitted.error());
        ++stats.errors;
        return;
    }
    auto job = submitted.value();

    const auto &columns = job.columns();
    out << recordAccepted(request.id, job.totalPoints(), columns)
        << std::endl;

    std::size_t streamed = 0;
    bool stream_ended = false;  // nextRow ran dry before the limit
    while (request.limit == 0 || streamed < request.limit) {
        auto row = job.nextRow();
        if (!row) {
            stream_ended = true;
            break;
        }
        out << recordRow(request.id, streamed, columns, *row)
            << std::endl;
        ++streamed;
    }
    job.cancel();  // no-op when every row was streamed
    const auto result = job.wait();
    // Report a failure only when it cut the requested stream short.
    // A point that failed in the cancelled tail (claimed in-flight
    // after a limit cutoff, timing-dependent) concerns rows the
    // caller never asked for — surfacing it would make the response
    // scheduling-dependent and mislabel a satisfied request.
    if (stream_ended && result.failure) {
        writeError(out, request.id, *result.failure);
        ++stats.errors;
    }

    // "cancelled" reports the caller-visible contract — were any rows
    // withheld? — not the internal flag, which is also set by the
    // harmless cancel() above after a fully streamed job.
    const bool truncated = streamed < job.totalPoints();
    out << recordDone(request.id, streamed, job.totalPoints(),
                      truncated)
        << std::endl;
    stats.rows += streamed;
}

ServiceStats
runService(Session &session, std::istream &in, std::ostream &out)
{
    ServiceStats stats;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const auto parsed = json::parse(line);
        if (!parsed.ok()) {
            writeError(out, "",
                       badRequest("malformed JSON at byte " +
                                  std::to_string(parsed.offset) +
                                  ": " + parsed.error));
            ++stats.errors;
            continue;
        }
        auto request = decodeServiceRequest(parsed.value);
        if (!request.ok()) {
            // A rejected-but-well-formed line still names the job it
            // answers: echo its id on the error record.
            std::string id;
            if (const auto *found = parsed.value.find("id");
                found && found->isString())
                id = found->string();
            writeError(out, id, request.error());
            ++stats.errors;
            continue;
        }
        ++stats.requests;
        if (request.value().op == ServiceOp::Shutdown) {
            out << recordDone(request.value().id, 0, 0, false)
                << std::endl;
            break;
        }
        serveRequest(session, request.value(), out, stats);
    }
    return stats;
}

} // namespace api
} // namespace qmh
