#include "service.hh"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/json.hh"
#include "sweep/emit.hh"

namespace qmh {
namespace api {

namespace {

Error
badRequest(std::string message)
{
    return Error{ErrorCode::BadRequest, std::move(message), {}};
}

/** Non-negative integral JSON number (or decimal string) as u64. */
std::optional<std::uint64_t>
asUInt(const json::Value &value)
{
    if (value.isString())
        return parseUInt(value.string());
    if (!value.isNumber())
        return std::nullopt;
    const double d = value.number();
    if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0)
        return std::nullopt;  // 2^53: past that, doubles drop seeds
    return static_cast<std::uint64_t>(d);
}

void
writeError(std::ostream &out, const std::string &id,
           const Error &error)
{
    out << "{\"type\":\"error\",\"id\":" << sweep::jsonQuote(id)
        << ",\"code\":\"" << errorCodeName(error.code)
        << "\",\"message\":" << sweep::jsonQuote(error.message)
        << ",\"details\":[";
    for (std::size_t i = 0; i < error.details.size(); ++i)
        out << (i ? "," : "") << sweep::jsonQuote(error.details[i]);
    out << "]}" << std::endl;
}

} // namespace

Outcome<ServiceRequest>
parseServiceRequest(const std::string &line)
{
    const auto parsed = json::parse(line);
    if (!parsed.ok())
        return badRequest("malformed JSON at byte " +
                          std::to_string(parsed.offset) + ": " +
                          parsed.error);
    return decodeServiceRequest(parsed.value);
}

Outcome<ServiceRequest>
decodeServiceRequest(const json::Value &root)
{
    if (!root.isObject())
        return badRequest("request must be a JSON object");

    ServiceRequest request;
    if (const auto *id = root.find("id")) {
        if (!id->isString())
            return badRequest("'id' must be a string");
        request.id = id->string();
    }
    if (const auto *op = root.find("op")) {
        if (!op->isString() || op->string() != "sweep")
            return badRequest("unknown op (only \"sweep\" is served)");
    }
    if (const auto *seed = root.find("seed")) {
        const auto value = asUInt(*seed);
        if (!value)
            return badRequest("'seed' must be a non-negative integer");
        request.seed = *value;
    }
    if (const auto *limit = root.find("limit")) {
        const auto value = asUInt(*limit);
        if (!value)
            return badRequest(
                "'limit' must be a non-negative integer");
        request.limit = static_cast<std::size_t>(*value);
    }

    const auto *specs = root.find("specs");
    if (!specs || !specs->isArray())
        return badRequest("'specs' must be an array of spec strings");
    std::vector<std::string> diagnostics;
    for (std::size_t i = 0; i < specs->items().size(); ++i) {
        const auto &item = specs->items()[i];
        if (!item.isString())
            return badRequest("specs[" + std::to_string(i) +
                              "] is not a string");
        const auto spec = parseSpec(item.string());
        for (const auto &problem : spec.errors)
            diagnostics.push_back("specs[" + std::to_string(i) +
                                  "]: " + problem);
        request.specs.push_back(spec.spec);
    }
    if (!diagnostics.empty())
        return Error{ErrorCode::InvalidSpec,
                     std::to_string(diagnostics.size()) +
                         " spec parse error(s)",
                     std::move(diagnostics)};
    return request;
}

void
serveRequest(Session &session, const ServiceRequest &request,
             std::ostream &out, ServiceStats &stats)
{
    SubmitOptions options;
    options.base_seed = request.seed;
    auto submitted = session.submit(request.specs, std::move(options));
    if (!submitted.ok()) {
        writeError(out, request.id, submitted.error());
        ++stats.errors;
        return;
    }
    auto job = submitted.value();

    out << "{\"type\":\"accepted\",\"id\":"
        << sweep::jsonQuote(request.id)
        << ",\"total\":" << job.totalPoints() << ",\"columns\":[";
    const auto &columns = job.columns();
    for (std::size_t c = 0; c < columns.size(); ++c)
        out << (c ? "," : "") << sweep::jsonQuote(columns[c]);
    out << "]}" << std::endl;

    std::size_t streamed = 0;
    bool stream_ended = false;  // nextRow ran dry before the limit
    while (request.limit == 0 || streamed < request.limit) {
        auto row = job.nextRow();
        if (!row) {
            stream_ended = true;
            break;
        }
        out << "{\"type\":\"row\",\"id\":"
            << sweep::jsonQuote(request.id)
            << ",\"index\":" << streamed << ",\"cells\":{";
        for (std::size_t c = 0; c < row->size(); ++c)
            out << (c ? "," : "") << sweep::jsonQuote(columns[c])
                << ":" << (*row)[c].toJson();
        out << "}}" << std::endl;
        ++streamed;
    }
    job.cancel();  // no-op when every row was streamed
    const auto result = job.wait();
    // Report a failure only when it cut the requested stream short.
    // A point that failed in the cancelled tail (claimed in-flight
    // after a limit cutoff, timing-dependent) concerns rows the
    // caller never asked for — surfacing it would make the response
    // scheduling-dependent and mislabel a satisfied request.
    if (stream_ended && result.failure) {
        writeError(out, request.id, *result.failure);
        ++stats.errors;
    }

    // "cancelled" reports the caller-visible contract — were any rows
    // withheld? — not the internal flag, which is also set by the
    // harmless cancel() above after a fully streamed job.
    const bool truncated = streamed < job.totalPoints();
    out << "{\"type\":\"done\",\"id\":" << sweep::jsonQuote(request.id)
        << ",\"rows\":" << streamed
        << ",\"total\":" << job.totalPoints() << ",\"cancelled\":"
        << (truncated ? "true" : "false") << "}" << std::endl;
    stats.rows += streamed;
}

ServiceStats
runService(Session &session, std::istream &in, std::ostream &out)
{
    ServiceStats stats;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const auto parsed = json::parse(line);
        if (!parsed.ok()) {
            writeError(out, "",
                       badRequest("malformed JSON at byte " +
                                  std::to_string(parsed.offset) +
                                  ": " + parsed.error));
            ++stats.errors;
            continue;
        }
        auto request = decodeServiceRequest(parsed.value);
        if (!request.ok()) {
            // A rejected-but-well-formed line still names the job it
            // answers: echo its id on the error record.
            std::string id;
            if (const auto *found = parsed.value.find("id");
                found && found->isString())
                id = found->string();
            writeError(out, id, request.error());
            ++stats.errors;
            continue;
        }
        ++stats.requests;
        serveRequest(session, request.value(), out, stats);
    }
    return stats;
}

} // namespace api
} // namespace qmh
