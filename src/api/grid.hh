/**
 * @file
 * Generic design-space grid over ExperimentSpecs.
 *
 * Where sweep::HierarchyGrid enumerates one simulator's config
 * struct, SpecGrid expands axis overrides on *any* spec: an axis is a
 * spec key plus the textual values to sweep it over, applied through
 * the shared key=value machinery. The cross product preserves axis
 * declaration order (first axis slowest, last fastest), so point
 * indices — and therefore the per-point RNG seeds of runSpecSweep —
 * are a pure function of the grid.
 */

#ifndef QMH_API_GRID_HH
#define QMH_API_GRID_HH

#include <string>
#include <vector>

#include "api/spec.hh"

namespace qmh {
namespace api {

/** Cartesian product of axis overrides over a base spec. */
struct SpecGrid
{
    /** One swept key and its values (textual, as in a spec). */
    struct Axis
    {
        std::string key;
        std::vector<std::string> values;
    };

    ExperimentSpec base;
    std::vector<Axis> axes;

    /** Append an axis (declaration order = expansion order). */
    void axis(std::string key, std::vector<std::string> values);

    /**
     * Parse an axis in CLI form, `key=v1,v2,v3`. Returns the empty
     * string and appends the axis on success, a diagnostic otherwise
     * (unknown key, empty value list, malformed value).
     */
    std::string addAxis(std::string_view text);

    /**
     * Check every axis value against the base spec without expanding;
     * one diagnostic per problem, empty = ok.
     */
    std::vector<std::string> validate() const;

    /** Number of points the expansion produces. */
    std::size_t points() const;

    /**
     * Expand the cross product into concrete specs. Panics on an
     * invalid key or value (run validate() first for recoverable
     * diagnostics); an axis with no values contributes nothing.
     */
    std::vector<ExperimentSpec> expand() const;
};

} // namespace api
} // namespace qmh

#endif // QMH_API_GRID_HH
