#include "grid.hh"

#include "common/logging.hh"

namespace qmh {
namespace api {

void
SpecGrid::axis(std::string key, std::vector<std::string> values)
{
    axes.push_back({std::move(key), std::move(values)});
}

std::string
SpecGrid::addAxis(std::string_view text)
{
    const auto eq = text.find('=');
    if (eq == std::string_view::npos || eq == 0)
        return "axis '" + std::string(text) +
               "' is not key=v1,v2,...";
    Axis parsed;
    parsed.key = std::string(text.substr(0, eq));
    auto rest = text.substr(eq + 1);
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const auto value = rest.substr(0, comma);
        if (value.empty())
            return "axis '" + std::string(text) +
                   "' has an empty value";
        parsed.values.emplace_back(value);
        if (comma == std::string_view::npos)
            break;
        rest = rest.substr(comma + 1);
    }
    if (parsed.values.empty())
        return "axis '" + std::string(text) + "' has no values";

    // Reject bad keys/values up front so CLI callers get the
    // diagnostic at parse time, not at expansion.
    ExperimentSpec scratch = base;
    for (const auto &value : parsed.values) {
        const auto error = specSet(scratch, parsed.key, value);
        if (!error.empty())
            return error;
    }
    axes.push_back(std::move(parsed));
    return "";
}

std::vector<std::string>
SpecGrid::validate() const
{
    std::vector<std::string> errors;
    for (const auto &ax : axes) {
        if (ax.values.empty()) {
            errors.push_back("axis '" + ax.key + "' has no values");
            continue;
        }
        ExperimentSpec scratch = base;
        for (const auto &value : ax.values) {
            const auto error = specSet(scratch, ax.key, value);
            if (!error.empty())
                errors.push_back(error);
        }
    }
    return errors;
}

std::size_t
SpecGrid::points() const
{
    std::size_t total = 1;
    for (const auto &ax : axes)
        total *= ax.values.size();
    return total;
}

std::vector<ExperimentSpec>
SpecGrid::expand() const
{
    const std::size_t total = points();
    std::vector<ExperimentSpec> specs;
    if (total == 0)
        return specs;
    specs.reserve(total);
    for (std::size_t index = 0; index < total; ++index) {
        ExperimentSpec spec = base;
        // Mixed-radix decomposition: first axis slowest, last fastest.
        std::size_t stride = total;
        for (const auto &ax : axes) {
            stride /= ax.values.size();
            const std::size_t pick =
                (index / stride) % ax.values.size();
            const auto error =
                specSet(spec, ax.key, ax.values[pick]);
            if (!error.empty())
                // qmh-lint: allow(typed-errors): grid axes are validated at construction — a bad value here is a SpecGrid invariant bug
                qmh_panic("SpecGrid::expand: ", error);
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace api
} // namespace qmh
