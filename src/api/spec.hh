/**
 * @file
 * The unified experiment specification of the qmh facade.
 *
 * Every simulator family in the repo (hierarchy DES, cache simulator,
 * bandwidth model, error-correction Monte Carlo) is driven from one
 * value type, ExperimentSpec: a machine (technology preset + code), a
 * workload (named generator + parameters) and an experiment kind with
 * its knobs. Specs speak one textual language — whitespace-separated
 * `key=value` tokens — shared by every CLI, bench and sweep axis, so
 * "run this paper figure" is a one-liner and a design-space sweep is
 * a spec plus axis overrides (see grid.hh).
 *
 * The printer is canonical and minimal: `printSpec` emits the
 * experiment kind plus every field that differs from the default, in
 * a fixed order, with doubles in shortest round-trip form, so
 * `parseSpec(printSpec(s)) == s` holds exactly for any spec.
 */

#ifndef QMH_API_SPEC_HH
#define QMH_API_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache_sim.hh"
#include "ecc/code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace api {

/** The simulator family an ExperimentSpec drives. */
enum class ExperimentKind {
    Hierarchy,   ///< event-driven CQLA memory-hierarchy simulation
    Cache,       ///< quantum cache simulator (Fig. 7)
    Bandwidth,   ///< superblock perimeter-bandwidth model (Fig. 6b)
    MonteCarlo,  ///< error-correction Monte Carlo (Table 2 validation)
    Trace        ///< trace-driven circuit-to-cache-to-network pipeline
};

/** Canonical kind name used in specs ("hierarchy", "cache", ...). */
const char *kindName(ExperimentKind kind);

/** Parse a kind name; nullopt on unknown. */
std::optional<ExperimentKind> parseKind(std::string_view name);

/** Every experiment kind name, in declaration order. */
const std::vector<std::string> &experimentKindNames();

/**
 * Diagnostic for an unknown name in an enumerated vocabulary: lists
 * every valid name and, when one is close in edit distance, suggests
 * it. Shared by the spec parser (`experiment=`) and the workload
 * validation of the experiment facade, so unknown-name errors are
 * uniformly actionable whichever surface reports them.
 */
std::string unknownNameDiagnostic(std::string_view what,
                                  std::string_view name,
                                  const std::vector<std::string> &valid);

/**
 * One experiment, fully specified. Fields not meaningful for the
 * chosen kind keep their defaults and are ignored by it; validation
 * of ranges happens in Experiment::validate() (experiment.hh).
 */
struct ExperimentSpec
{
    ExperimentKind kind = ExperimentKind::Hierarchy;

    // --- machine ---
    std::string machine = "future";  ///< iontrap preset: now | future
    ecc::CodeKind code = ecc::CodeKind::Steane713;

    // --- workload (registry of named generators; workload.hh) ---
    std::string workload = "draper";
    int n = 256;      ///< operand / register width
    int gates = 512;  ///< gate count (random workload)
    int reps = 4;     ///< repeated additions (modexp workload)

    // --- hierarchy / trace knobs ---
    unsigned transfers = 10;          ///< parallel transfer channels
    unsigned blocks = 49;             ///< compute blocks
    std::uint64_t adders = 300;       ///< additions in the stream
    double l1_fraction = 1.0 / 3.0;   ///< share routed to level 1
    double chain_fraction = 0.0;      ///< serially dependent share

    // --- banked level-2 memory (hierarchy / trace kinds) ---
    unsigned mem_banks = 8;           ///< memory banks (addr % banks)
    unsigned mem_ports = 4;           ///< concurrent requests served
    std::uint64_t mem_buffer = 8;     ///< bounded request deque per bank
    std::uint64_t cycles_per_line = 0;///< extra bank ticks per line

    // --- cache / trace knobs ---
    std::uint64_t capacity = 0;  ///< cached qubits; 0 = capacity_x * PE
    double capacity_x = 1.0;     ///< auto-capacity multiplier of PE
    cache::FetchPolicy policy = cache::FetchPolicy::OptimizedLookahead;
    bool warm = false;           ///< warm-start the cache
    bool mask_data = true;       ///< cache only the data registers

    // --- bandwidth / montecarlo knobs ---
    int level = 2;               ///< concatenation level
    double utilization = 1.0;    ///< busy-block fraction (bandwidth)
    double p0 = 1e-4;            ///< physical error rate (montecarlo)
    std::uint64_t trials = 20000;///< Monte-Carlo trials
    double noise_factor = 2.0;   ///< EC-circuit noise multiplier

    bool operator==(const ExperimentSpec &) const = default;

    /** Resolve the technology preset (panics on invalid machine). */
    iontrap::Params params() const;
};

/** Every spec key in canonical (print) order. */
const std::vector<std::string> &specKeys();

/** Value shape of a spec key (drives generic tooling like the
 * design-space optimizer, which can only refine numeric axes). */
enum class SpecKeyKind {
    Text,  ///< enumerated / free-form string
    Int,   ///< bounded signed integer
    UInt,  ///< unsigned 64-bit integer
    Real,  ///< finite double
    Bool   ///< 0 | 1
};

/** Value shape of @p key; nullopt on unknown key. */
std::optional<SpecKeyKind> specKeyKind(std::string_view key);

/** One-line help text for @p key; nullptr on unknown key. */
const char *specKeyHelp(std::string_view key);

/** Canonical textual value of @p key; nullopt on unknown key. */
std::optional<std::string> specGet(const ExperimentSpec &spec,
                                   std::string_view key);

/**
 * Set @p key from its textual form. Returns the empty string on
 * success, a diagnostic otherwise (unknown key, malformed value).
 */
std::string specSet(ExperimentSpec &spec, std::string_view key,
                    std::string_view value);

/**
 * Canonical one-line form: `experiment=<kind>` followed by every
 * field that differs from the defaults, in specKeys() order.
 */
std::string printSpec(const ExperimentSpec &spec);

/** Outcome of parsing a spec string. */
struct SpecParseResult
{
    ExperimentSpec spec;
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/**
 * Parse whitespace-separated `key=value` tokens over the default
 * spec. All tokens are processed; every problem is reported.
 */
SpecParseResult parseSpec(std::string_view text);

/** Parse pre-split tokens (e.g. argv tails). */
SpecParseResult parseSpecTokens(const std::vector<std::string> &tokens);

/**
 * Strict numeric parsing: the whole string must be consumed and in
 * range, otherwise nullopt. No leading whitespace, no trailing junk —
 * unlike std::atoi, garbage never silently coerces to 0.
 */
std::optional<std::int64_t> parseInt(std::string_view text);
std::optional<std::uint64_t> parseUInt(std::string_view text);
std::optional<double> parseDouble(std::string_view text);

/** Shortest decimal form that parses back to the same double. */
std::string formatDouble(double v);

} // namespace api
} // namespace qmh

#endif // QMH_API_SPEC_HH
