/**
 * @file
 * Random circuit generators for property-based testing and synthetic
 * workloads: random reversible (classical) circuits whose semantics the
 * bit-vector simulator can check, and random mixed circuits for
 * scheduler/cache stress.
 */

#ifndef QMH_GEN_RANDOM_CIRCUIT_HH
#define QMH_GEN_RANDOM_CIRCUIT_HH

#include "circuit/program.hh"
#include "common/random.hh"

namespace qmh {
namespace gen {

/**
 * A random classical reversible circuit (X/CNOT/SWAP/Toffoli) over
 * @p qubits qubits with @p gates gates.
 */
circuit::Program randomReversible(int qubits, int gates, Random &rng);

/**
 * A random mixed logical circuit (adds H/T/CPhase to the reversible
 * set) for scheduler and cache stress tests.
 */
circuit::Program randomMixed(int qubits, int gates, Random &rng);

} // namespace gen
} // namespace qmh

#endif // QMH_GEN_RANDOM_CIRCUIT_HH
