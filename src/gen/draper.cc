#include "draper.hh"

#include <string>
#include <vector>

#include "common/logging.hh"

namespace qmh {
namespace gen {

using circuit::Program;
using circuit::QubitId;

namespace {

int
floorLog2(int v)
{
    int log = 0;
    while (v >= 2) {
        v >>= 1;
        ++log;
    }
    return log;
}

/** Maps propagate-tree nodes P_t[m] (t >= 1) to ancilla indices. */
class TreeIndexer
{
  public:
    explicit TreeIndexer(int n) : _n(n)
    {
        _level_offset.push_back(0);  // t = 0 unused (lives in b)
        int offset = 0;
        for (int t = 1; (_n >> t) >= 1; ++t) {
            _level_offset.push_back(offset);
            offset += _n >> t;
        }
        _total = offset;
    }

    int total() const { return _total; }

    int
    index(int t, int m) const
    {
        if (t < 1 || t >= static_cast<int>(_level_offset.size()) ||
            m < 0 || m >= (_n >> t))
            qmh_panic("TreeIndexer: bad node (", t, ",", m, ") for n=",
                      _n);
        return _level_offset[static_cast<std::size_t>(t)] + m;
    }

  private:
    int _n;
    std::vector<int> _level_offset;
    int _total = 0;
};

/**
 * Emits the carry-network rounds of the adder. `width` may be smaller
 * than the layout width during the carry-erasure phase.
 */
class CarryNetwork
{
  public:
    CarryNetwork(Program &prog, const AdderLayout &layout,
                 const TreeIndexer &tree, bool barriers)
        : _prog(prog), _layout(layout), _tree(tree), _barriers(barriers)
    {}

    /** Close the current structural round. */
    void
    fence()
    {
        if (_barriers)
            _prog.barrier();
    }

    /**
     * Propagate-tree rounds: P_t[m] = P_{t-1}[2m] AND P_{t-1}[2m+1],
     * with P_0[i] living in b_i. Reverse order inverts the rounds.
     */
    void
    pRounds(int width, bool forward)
    {
        const int top = floorLog2(width);
        for (int step = 0; step < top; ++step) {
            const int t = forward ? step + 1 : top - step;
            for (int m = 0; m < (width >> t); ++m)
                _prog.toffoli(pNode(t - 1, 2 * m), pNode(t - 1, 2 * m + 1),
                              treeQubit(t, m));
            if ((width >> t) > 0)
                fence();
        }
    }

    /**
     * Generate (up-sweep) rounds: merge aligned sibling blocks,
     * G[hi] ^= P[hi] AND G[lo]. After round t, every aligned block of
     * size 2^t carries its block-generate in its top carry qubit.
     */
    void
    gRounds(int width, bool forward)
    {
        const int top = floorLog2(width);
        for (int step = 0; step < top; ++step) {
            const int t = forward ? step + 1 : top - step;
            const int half = 1 << (t - 1);
            const int full = 1 << t;
            for (int m = 0; m < (width >> t); ++m)
                _prog.toffoli(carryQubit(m * full + half - 1),
                              pNode(t - 1, 2 * m + 1),
                              carryQubit((m + 1) * full - 1));
            if ((width >> t) > 0)
                fence();
        }
    }

    /**
     * Carry (down-sweep) rounds: extend finalized prefixes across
     * non-aligned block boundaries. After all rounds z_i holds the
     * carry out of bits [0..i].
     */
    void
    cRounds(int width, bool forward)
    {
        const int top = floorLog2(width);
        for (int step = 0; step < top; ++step) {
            const int t = forward ? top - step : step + 1;
            const int half = 1 << (t - 1);
            const int full = 1 << t;
            const int m_max = (width - half) / full;
            for (int m = 1; m <= m_max; ++m)
                _prog.toffoli(carryQubit(m * full - 1), pNode(t - 1, 2 * m),
                              carryQubit(m * full + half - 1));
            if (m_max >= 1)
                fence();
        }
    }

    QubitId
    aQubit(int i) const
    {
        return QubitId(static_cast<QubitId::rep_type>(_layout.a_offset + i));
    }

    QubitId
    bQubit(int i) const
    {
        return QubitId(static_cast<QubitId::rep_type>(_layout.b_offset + i));
    }

    QubitId
    carryQubit(int i) const
    {
        return QubitId(
            static_cast<QubitId::rep_type>(_layout.carry_offset + i));
    }

    QubitId
    treeQubit(int t, int m) const
    {
        return QubitId(static_cast<QubitId::rep_type>(
            _layout.tree_offset + _tree.index(t, m)));
    }

    /** P_t[m]: level 0 lives in b (holding p), higher levels in tree. */
    QubitId
    pNode(int t, int m) const
    {
        return t == 0 ? bQubit(m) : treeQubit(t, m);
    }

  private:
    Program &_prog;
    const AdderLayout &_layout;
    const TreeIndexer &_tree;
    bool _barriers;
};

} // namespace

int
draperTreeSize(int n)
{
    int total = 0;
    for (int t = 1; (n >> t) >= 1; ++t)
        total += n >> t;
    return total;
}

Program
draperAdder(int n, bool keep_carry, AdderLayout *layout_out,
            UncomputeMode mode, bool with_barriers)
{
    if (n < 1)
        qmh_fatal("draperAdder: operand width must be >= 1, got ", n);

    AdderLayout layout;
    layout.bits = n;
    layout.a_offset = 0;
    layout.b_offset = n;
    layout.carry_offset = 2 * n;
    layout.tree_offset = 3 * n;
    layout.tree_size = draperTreeSize(n);
    layout.total_qubits = 3 * n + layout.tree_size;
    layout.keeps_carry = keep_carry;

    Program prog("draper-adder-" + std::to_string(n),
                 layout.total_qubits);
    TreeIndexer tree(n);
    CarryNetwork net(prog, layout, tree, with_barriers);

    // Phase 1: generate and propagate bits. z_i = a_i AND b_i,
    // b_i = a_i XOR b_i.
    for (int i = 0; i < n; ++i)
        prog.toffoli(net.aQubit(i), net.bQubit(i), net.carryQubit(i));
    net.fence();
    for (int i = 0; i < n; ++i)
        prog.cnot(net.aQubit(i), net.bQubit(i));
    net.fence();

    // Phase 2: carry computation (prefix tree), then return the
    // propagate tree to zero.
    net.pRounds(n, true);
    net.gRounds(n, true);
    net.cRounds(n, true);
    net.pRounds(n, false);

    // Phase 3: write the sum. s_0 = p_0; s_i = p_i XOR c_i.
    for (int i = 1; i < n; ++i)
        prog.cnot(net.carryQubit(i - 1), net.bQubit(i));
    if (n > 1)
        net.fence();

    // Phase 4: erase carries with the complement trick. The carry
    // string of (a, NOT s) equals the carry string of (a, b), so the
    // inverse carry computation on the complemented sum zeroes z.
    // Erasing w bits clears z_0..z_{w-1}; keeping the carry-out means
    // leaving z_{n-1} alone.
    const int w =
        mode == UncomputeMode::CarriesLeftDirty ? 0 : (keep_carry ? n - 1
                                                                  : n);
    if (w > 0) {
        for (int i = 0; i < w; ++i)
            prog.x(net.bQubit(i));
        net.fence();
        for (int i = 0; i < w; ++i)
            prog.cnot(net.aQubit(i), net.bQubit(i));
        net.fence();
        net.pRounds(w, true);
        net.cRounds(w, false);
        net.gRounds(w, false);
        net.pRounds(w, false);
        for (int i = 0; i < w; ++i)
            prog.cnot(net.aQubit(i), net.bQubit(i));
        net.fence();
        for (int i = 0; i < w; ++i)
            prog.toffoli(net.aQubit(i), net.bQubit(i),
                         net.carryQubit(i));
        net.fence();
        for (int i = 0; i < w; ++i)
            prog.x(net.bQubit(i));
    }

    if (layout_out)
        *layout_out = layout;
    return prog;
}

} // namespace gen
} // namespace qmh
