#include "ripple.hh"

#include <string>

#include "common/logging.hh"

namespace qmh {
namespace gen {

using circuit::Program;
using circuit::QubitId;

namespace {

QubitId
q(int i)
{
    return QubitId(static_cast<QubitId::rep_type>(i));
}

} // namespace

Program
rippleAdder(int n, bool keep_carry, AdderLayout *layout_out)
{
    if (n < 1)
        qmh_fatal("rippleAdder: operand width must be >= 1, got ", n);

    AdderLayout layout;
    layout.bits = n;
    layout.a_offset = 0;
    layout.b_offset = n;
    layout.carry_offset = 2 * n;
    layout.tree_offset = 3 * n;
    layout.tree_size = 0;
    layout.total_qubits = 3 * n;
    layout.keeps_carry = keep_carry;

    Program prog("ripple-adder-" + std::to_string(n),
                 layout.total_qubits);
    auto a = [&](int i) { return q(layout.a_offset + i); };
    auto b = [&](int i) { return q(layout.b_offset + i); };
    auto z = [&](int i) { return q(layout.carry_offset + i); };

    // Forward carry chain: z_i accumulates the carry out of bits
    // [0..i] (z_i = g_i XOR (p_i AND z_{i-1}); XOR equals OR because
    // generate and propagate are exclusive).
    for (int i = 0; i < n; ++i) {
        prog.toffoli(a(i), b(i), z(i));
        prog.cnot(a(i), b(i));
        if (i >= 1)
            prog.toffoli(z(i - 1), b(i), z(i));
    }

    // Sum: s_0 = p_0; s_i = p_i XOR c_i.
    for (int i = 1; i < n; ++i)
        prog.cnot(z(i - 1), b(i));

    // Erase carries via the complement trick (see draperAdder).
    const int w = keep_carry ? n - 1 : n;
    if (w > 0) {
        for (int i = 0; i < w; ++i)
            prog.x(b(i));
        for (int i = 0; i < w; ++i)
            prog.cnot(a(i), b(i));
        for (int i = w - 1; i >= 0; --i) {
            if (i >= 1)
                prog.toffoli(z(i - 1), b(i), z(i));
            prog.cnot(a(i), b(i));
            prog.toffoli(a(i), b(i), z(i));
        }
        for (int i = 0; i < w; ++i)
            prog.x(b(i));
    }

    if (layout_out)
        *layout_out = layout;
    return prog;
}

} // namespace gen
} // namespace qmh
