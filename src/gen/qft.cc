#include "qft.hh"

#include <string>

#include "common/logging.hh"

namespace qmh {
namespace gen {

using circuit::Program;
using circuit::QubitId;

circuit::Program
qft(int n, bool with_swaps)
{
    if (n < 1)
        qmh_fatal("qft: register width must be >= 1, got ", n);

    Program prog("qft-" + std::to_string(n), n);
    auto q = [](int i) {
        return QubitId(static_cast<QubitId::rep_type>(i));
    };

    // Standard big-endian QFT: qubit i gets H, then controlled-R_k
    // rotations from every lower-significance qubit.
    for (int i = n - 1; i >= 0; --i) {
        prog.h(q(i));
        for (int j = i - 1; j >= 0; --j)
            prog.cphase(i - j + 1, q(j), q(i));
    }

    if (with_swaps) {
        for (int i = 0; i < n / 2; ++i)
            prog.swapq(q(i), q(n - 1 - i));
    }

    return prog;
}

std::uint64_t
qftCphaseCount(int n)
{
    const auto nn = static_cast<std::uint64_t>(n);
    return nn * (nn - 1) / 2;
}

} // namespace gen
} // namespace qmh
