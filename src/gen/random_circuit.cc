#include "random_circuit.hh"

#include <array>

#include "common/logging.hh"

namespace qmh {
namespace gen {

using circuit::GateKind;
using circuit::Program;
using circuit::QubitId;

namespace {

/** Pick @p k distinct qubit ids uniformly. */
std::array<QubitId, 3>
pickDistinct(int qubits, int k, Random &rng)
{
    std::array<QubitId, 3> out{};
    int chosen = 0;
    while (chosen < k) {
        const auto candidate = static_cast<QubitId::rep_type>(
            rng.uniformInt(static_cast<std::uint64_t>(qubits)));
        bool duplicate = false;
        for (int i = 0; i < chosen; ++i)
            duplicate |= out[static_cast<std::size_t>(i)].value() ==
                         candidate;
        if (!duplicate)
            out[static_cast<std::size_t>(chosen++)] = QubitId(candidate);
    }
    return out;
}

Program
randomCircuit(int qubits, int gates, Random &rng, bool classical_only)
{
    if (qubits < 3)
        qmh_fatal("random circuit needs at least 3 qubits, got ", qubits);
    if (gates < 0)
        qmh_fatal("random circuit: negative gate count");

    Program prog(classical_only ? "random-reversible" : "random-mixed",
                 qubits);
    for (int g = 0; g < gates; ++g) {
        const auto roll = rng.uniformInt(classical_only ? 4 : 7);
        switch (roll) {
          case 0: {
            const auto ops = pickDistinct(qubits, 1, rng);
            prog.x(ops[0]);
            break;
          }
          case 1: {
            const auto ops = pickDistinct(qubits, 2, rng);
            prog.cnot(ops[0], ops[1]);
            break;
          }
          case 2: {
            const auto ops = pickDistinct(qubits, 2, rng);
            prog.swapq(ops[0], ops[1]);
            break;
          }
          case 3: {
            const auto ops = pickDistinct(qubits, 3, rng);
            prog.toffoli(ops[0], ops[1], ops[2]);
            break;
          }
          case 4: {
            const auto ops = pickDistinct(qubits, 1, rng);
            prog.h(ops[0]);
            break;
          }
          case 5: {
            const auto ops = pickDistinct(qubits, 1, rng);
            prog.t(ops[0]);
            break;
          }
          default: {
            const auto ops = pickDistinct(qubits, 2, rng);
            prog.cphase(2 + static_cast<std::int32_t>(rng.uniformInt(6)),
                        ops[0], ops[1]);
            break;
          }
        }
    }
    return prog;
}

} // namespace

Program
randomReversible(int qubits, int gates, Random &rng)
{
    return randomCircuit(qubits, gates, rng, true);
}

Program
randomMixed(int qubits, int gates, Random &rng)
{
    return randomCircuit(qubits, gates, rng, false);
}

} // namespace gen
} // namespace qmh
