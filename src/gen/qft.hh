/**
 * @file
 * Quantum Fourier Transform generator (paper Section 6.1): n Hadamards,
 * n(n-1)/2 controlled phase rotations with all-to-all qubit pairing,
 * and an optional final bit-reversal swap network. The QFT is the
 * paper's communication-heavy, computation-light stress application.
 */

#ifndef QMH_GEN_QFT_HH
#define QMH_GEN_QFT_HH

#include "circuit/program.hh"

namespace qmh {
namespace gen {

/**
 * Build the n-qubit QFT.
 *
 * @param n register width
 * @param with_swaps append the bit-reversal swap network
 */
circuit::Program qft(int n, bool with_swaps = false);

/** Controlled-phase count of the n-qubit QFT: n(n-1)/2. */
std::uint64_t qftCphaseCount(int n);

} // namespace gen
} // namespace qmh

#endif // QMH_GEN_QFT_HH
