/**
 * @file
 * Vedral/Barenco/Ekert-style ripple-carry adder: the linear-depth
 * baseline against which the logarithmic-depth Draper adder is
 * compared. Same register convention as draperAdder (b <- a + b).
 */

#ifndef QMH_GEN_RIPPLE_HH
#define QMH_GEN_RIPPLE_HH

#include "circuit/program.hh"
#include "draper.hh"

namespace qmh {
namespace gen {

/**
 * Build the n-bit in-place ripple-carry adder. The layout matches
 * AdderLayout (tree_size is zero).
 */
circuit::Program rippleAdder(int n, bool keep_carry = true,
                             AdderLayout *layout_out = nullptr);

} // namespace gen
} // namespace qmh

#endif // QMH_GEN_RIPPLE_HH
