/**
 * @file
 * Generator for the Draper/Kutin/Rains/Svore logarithmic-depth quantum
 * carry-lookahead adder (quant-ph/0406142) — the workload at the centre
 * of the paper's evaluation ("the Draper carry-lookahead adder is its
 * most efficient implementation").
 *
 * The generated circuit is the in-place adder: b <- a + b (mod 2^n),
 * with an optional carry-out qubit, built from X/CNOT/Toffoli only.
 * Carries are computed by a Brent-Kung propagate/generate prefix tree
 * (Toffoli depth O(log n)) and erased with the complement trick: the
 * carry string of (a, NOT s) equals the carry string of (a, b), so
 * running the carry computation in reverse on the complemented sum
 * returns every ancilla to zero.
 */

#ifndef QMH_GEN_DRAPER_HH
#define QMH_GEN_DRAPER_HH

#include "circuit/program.hh"

namespace qmh {
namespace gen {

/** Register map of a generated adder circuit. */
struct AdderLayout
{
    int bits = 0;        ///< operand width n
    int a_offset = 0;    ///< qubits [a_offset, a_offset+n): operand a
    int b_offset = 0;    ///< qubits [b_offset, b_offset+n): b, then sum
    int carry_offset = 0;///< qubits [carry_offset, ...): carry ancilla z
    int tree_offset = 0; ///< propagate-tree ancilla
    int tree_size = 0;   ///< number of tree ancilla qubits
    int total_qubits = 0;
    bool keeps_carry = false;
    /** Index of the carry-out qubit (valid when keeps_carry). */
    int carryOutQubit() const { return carry_offset + bits - 1; }
};

/** How much of the scratch state the adder cleans up. */
enum class UncomputeMode {
    /**
     * Erase the carry register with the complement trick; ancilla all
     * return to zero (fully reusable adder).
     */
    Full,
    /**
     * Stop after the sum is written: the propagate tree is clean but
     * the carry register still holds the carry string. This is the
     * forward-only adder whose parallelism profile matches the paper's
     * Fig. 2 (peak ~n, average ~n/4 in Toffoli slots).
     */
    CarriesLeftDirty
};

/**
 * Build the n-bit in-place carry-lookahead adder.
 *
 * @param n operand width (>= 1)
 * @param keep_carry when true, the carry-out survives in
 *        layout.carryOutQubit(); when false every ancilla is returned
 *        to zero and the sum is taken mod 2^n (Full mode only)
 * @param layout_out optional register map for callers that need to
 *        load/read operands (tests, cache simulation)
 * @param mode scratch clean-up policy
 * @param with_barriers emit a scheduling barrier after each structural
 *        round (the paper's static compiler issues rounds as written;
 *        disable for overlap ablation studies)
 */
circuit::Program draperAdder(int n, bool keep_carry = true,
                             AdderLayout *layout_out = nullptr,
                             UncomputeMode mode = UncomputeMode::Full,
                             bool with_barriers = true);

/** Number of propagate-tree ancilla used by an n-bit adder. */
int draperTreeSize(int n);

} // namespace gen
} // namespace qmh

#endif // QMH_GEN_DRAPER_HH
