#include "qmh_lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "qmh_lint/internal.hh"

namespace qmh {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

struct RuleInfo
{
    const char *id;
    const char *description;
};

// The contract rules, in documentation order: six per-file token rules
// followed by the two whole-tree rules (lintTree only). The two meta
// rules (bad-suppression, unused-suppression) guard the suppression
// mechanism itself and are always on and never suppressible.
constexpr RuleInfo rule_infos[] = {
    {"no-wallclock",
     "no clock or entropy reads (std::chrono::*_clock::now, time(), "
     "std::random_device): simulated time is the only time"},
    {"no-raw-rand",
     "all randomness flows through seeded qmh::Random; std::rand and "
     "naked std engines (std::mt19937, ...) are not replayable"},
    {"ordered-iteration",
     "no range-for over std::unordered_map/set: hash order must not "
     "reach rows, cache files or schedules — iterate a sorted "
     "snapshot"},
    {"typed-errors",
     "src/api and src/server request paths return Outcome; "
     "throw/exit/qmh_panic are reserved for internal invariant "
     "violations"},
    {"banned-headers",
     "headers that exist to break the other rules (<ctime>, <random>, "
     "<sys/time.h>) stay out of the tree"},
    {"lock-discipline",
     "src/server and src/sweep never block (poll/read/write/wait/"
     "simulate/runSpecSweep/->run()) while a lock_guard/unique_lock/"
     "scoped_lock is live; condition-variable waits ON the lock are "
     "the sanctioned exception"},
    {"layering",
     "the src/ include graph respects the declared layer policy: no "
     "upward includes, no forbidden facade-bypass edges, no include "
     "cycles (whole-tree rule; lintTree only)"},
    {"unchecked-outcome",
     "a call to a function returning Outcome<...> is never discarded "
     "as a bare statement — a dropped Outcome drops its failure "
     "(whole-tree rule; lintTree only)"},
};

bool
isContractRule(std::string_view id)
{
    for (const auto &info : rule_infos)
        if (id == info.id)
            return true;
    return false;
}

/** Rules that need every file's facts; their findings (and therefore
 * their suppressions) are resolved by the tree passes, not here. */
bool
isTreeRule(std::string_view id)
{
    return id == "layering" || id == "unchecked-outcome";
}

// ---------------------------------------------------------------------------
// Per-directory policy
// ---------------------------------------------------------------------------

struct Policy
{
    bool no_wallclock = true;
    bool no_raw_rand = true;
    bool ordered_iteration = true;
    /** Strict mode: besides range-fors, flag iterator extraction
     * (.begin()/cbegin() and friends) from unordered containers.
     * On in src/sim/, where component arbitration decides grant
     * order — hash order anywhere in that path breaks the
     * bit-identical determinism contract. */
    bool ordered_iteration_strict = false;
    bool typed_errors = false;  ///< opt-in: only the Outcome domain
    bool banned_headers = true;
    bool lock_discipline = false;  ///< opt-in: concurrent domains

    bool
    enabled(std::string_view rule) const
    {
        if (rule == "no-wallclock")
            return no_wallclock;
        if (rule == "no-raw-rand")
            return no_raw_rand;
        if (rule == "ordered-iteration")
            return ordered_iteration;
        if (rule == "typed-errors")
            return typed_errors;
        if (rule == "banned-headers")
            return banned_headers;
        if (rule == "lock-discipline")
            return lock_discipline;
        return true;
    }
};

Policy
policyFor(std::string_view path)
{
    Policy policy;
    // typed-errors is scoped to the request domains: the facade and
    // the experiment server, where caller mistakes and transport
    // failures must come back as Outcome values. Everywhere else
    // qmh_panic IS the documented failure mode for programming
    // errors.
    if (path.find("src/api/") != std::string_view::npos ||
        path.find("src/server/") != std::string_view::npos)
        policy.typed_errors = true;
    // The sanctioned RNG home may name raw engines (to wrap, compare
    // against, or document them) without tripping its own rule.
    if (path.find("src/common/random") != std::string_view::npos)
        policy.no_raw_rand = false;
    // The component kernel (ports, token pools, banked memory) is
    // where same-tick arbitration is decided; ordered-iteration is
    // enforced in strict mode there.
    if (path.find("src/sim/") != std::string_view::npos)
        policy.ordered_iteration_strict = true;
    // The concurrent domains: the multi-client server and the worker
    // pool. A blocking call under a held lock serializes every other
    // client/worker, so it is a finding there.
    if (path.find("src/server/") != std::string_view::npos ||
        path.find("src/sweep/") != std::string_view::npos)
        policy.lock_discipline = true;
    return policy;
}

// ---------------------------------------------------------------------------
// Scrubber: blank comments and literal contents, keeping lines
// ---------------------------------------------------------------------------

struct Comment
{
    int start_line = 0;      ///< line the comment opens on
    int end_line = 0;        ///< line the comment closes on
    bool code_before = false;///< non-ws code earlier on start_line
    std::string text;        ///< comment body (without delimiters)
};

struct ScrubResult
{
    std::string code;               ///< literals/comments blanked
    std::vector<Comment> comments;
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Identifier run ending just before @p pos (may be empty). */
std::string_view
identBefore(std::string_view text, std::size_t pos)
{
    std::size_t begin = pos;
    while (begin > 0 && identChar(text[begin - 1]))
        --begin;
    return text.substr(begin, pos - begin);
}

/**
 * Phase one of the analysis: walk the raw text once, copying code
 * through and replacing the contents of comments, string literals,
 * char literals and raw strings with spaces (newlines preserved, so
 * every byte keeps its line). Handles the classic tokenizer traps:
 * raw strings with custom delimiters, line comments continued by a
 * backslash splice, encoding-prefixed literals and digit separators.
 */
ScrubResult
scrub(std::string_view text)
{
    ScrubResult out;
    out.code.assign(text.begin(), text.end());

    int line = 1;
    bool code_on_line = false;
    std::size_t i = 0;
    const std::size_t n = text.size();

    auto blank = [&](std::size_t pos) {
        if (out.code[pos] != '\n')
            out.code[pos] = ' ';
    };
    auto advance = [&](std::size_t pos) {
        if (text[pos] == '\n') {
            ++line;
            code_on_line = false;
        }
    };

    while (i < n) {
        const char c = text[i];

        // --- line comment (with backslash-splice continuation) ---
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            Comment comment;
            comment.start_line = line;
            comment.code_before = code_on_line;
            blank(i);
            blank(i + 1);
            std::size_t j = i + 2;
            while (j < n) {
                if (text[j] == '\n') {
                    // A backslash immediately before the newline (or
                    // before a \r\n pair) splices the next physical
                    // line into the comment.
                    std::size_t back = j;
                    if (back > 0 && text[back - 1] == '\r')
                        --back;
                    if (back > 0 && text[back - 1] == '\\') {
                        advance(j);
                        ++j;
                        continue;
                    }
                    break;
                }
                comment.text += text[j];
                blank(j);
                ++j;
            }
            comment.end_line = line;
            out.comments.push_back(std::move(comment));
            i = j;  // newline (or EOF) handled by the main loop
            continue;
        }

        // --- block comment ---
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            Comment comment;
            comment.start_line = line;
            comment.code_before = code_on_line;
            blank(i);
            blank(i + 1);
            std::size_t j = i + 2;
            while (j < n) {
                if (text[j] == '*' && j + 1 < n && text[j + 1] == '/') {
                    blank(j);
                    blank(j + 1);
                    j += 2;
                    break;
                }
                comment.text += text[j];
                blank(j);
                advance(j);
                ++j;
            }
            comment.end_line = line;
            out.comments.push_back(std::move(comment));
            i = j;
            continue;
        }

        // --- string literal (raw or ordinary) ---
        if (c == '"') {
            const auto prefix = identBefore(text, i);
            const bool raw = !prefix.empty() && prefix.back() == 'R' &&
                             (prefix == "R" || prefix == "u8R" ||
                              prefix == "uR" || prefix == "UR" ||
                              prefix == "LR");
            code_on_line = true;
            std::size_t j = i + 1;
            if (raw) {
                // R"delim( ... )delim"
                std::string delim;
                while (j < n && text[j] != '(' && text[j] != '\n')
                    delim += text[j++];
                std::string closer = ")" + delim + "\"";
                const std::size_t end = text.find(closer, j);
                const std::size_t stop =
                    end == std::string_view::npos ? n
                                                  : end + closer.size();
                for (std::size_t k = i + 1; k < stop; ++k) {
                    blank(k);
                    advance(k);
                }
                i = stop;
                continue;
            }
            while (j < n && text[j] != '"' && text[j] != '\n') {
                if (text[j] == '\\' && j + 1 < n) {
                    blank(j);
                    ++j;
                }
                blank(j);
                ++j;
            }
            if (j < n && text[j] == '"')
                ++j;  // keep the closing quote
            i = j;
            continue;
        }

        // --- char literal vs digit separator (1'000'000) ---
        if (c == '\'') {
            const auto prefix = identBefore(text, i);
            const bool literal = prefix.empty() || prefix == "u" ||
                                 prefix == "U" || prefix == "L" ||
                                 prefix == "u8";
            code_on_line = true;
            if (!literal) {
                ++i;  // separator inside a number: plain code
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && text[j] != '\'' && text[j] != '\n') {
                if (text[j] == '\\' && j + 1 < n) {
                    blank(j);
                    ++j;
                }
                blank(j);
                ++j;
            }
            if (j < n && text[j] == '\'')
                ++j;
            i = j;
            continue;
        }

        if (!std::isspace(static_cast<unsigned char>(c)))
            code_on_line = true;
        advance(i);
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Tokenizer over scrubbed code
// ---------------------------------------------------------------------------

struct Token
{
    enum class Kind { Ident, Punct };
    Kind kind;
    std::string_view text;
    int line;

    bool is(std::string_view t) const { return text == t; }
    bool ident() const { return kind == Kind::Ident; }
};

std::vector<Token>
tokenize(std::string_view code)
{
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = code.size();
    while (i < n) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (identChar(c) &&
            !std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < n && identChar(code[j]))
                ++j;
            tokens.push_back(
                {Token::Kind::Ident, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            // pp-number: digits, idents-chars, '.', and exponent signs
            // consumed as one blob so "1e5f" never yields an ident.
            std::size_t j = i + 1;
            while (j < n) {
                const char d = code[j];
                if (identChar(d) || d == '.') {
                    ++j;
                    continue;
                }
                if ((d == '+' || d == '-') &&
                    (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                     code[j - 1] == 'p' || code[j - 1] == 'P')) {
                    ++j;
                    continue;
                }
                break;
            }
            i = j;
            continue;
        }
        if (c == ':' && i + 1 < n && code[i + 1] == ':') {
            tokens.push_back({Token::Kind::Punct, code.substr(i, 2),
                              line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && code[i + 1] == '>') {
            tokens.push_back({Token::Kind::Punct, code.substr(i, 2),
                              line});
            i += 2;
            continue;
        }
        tokens.push_back({Token::Kind::Punct, code.substr(i, 1), line});
        ++i;
    }
    return tokens;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppression
{
    std::string rule;
    int comment_line = 0;  ///< where the allow() itself sits
    int target_line = 0;   ///< the code line it covers
    bool used = false;
};

/**
 * Extract "qmh-lint: allow(<rule>): <justification>" markers.
 * A trailing comment covers its own line; a comment alone on a line
 * covers the line right after it. Malformed markers (unknown rule,
 * missing justification) are reported as bad-suppression.
 */
void
collectSuppressions(const std::string &file,
                    const std::vector<Comment> &comments,
                    std::vector<Suppression> &suppressions,
                    std::vector<Diagnostic> &diagnostics)
{
    constexpr std::string_view marker = "qmh-lint:";
    for (const auto &comment : comments) {
        std::size_t pos = 0;
        while ((pos = comment.text.find(marker, pos)) !=
               std::string::npos) {
            std::string_view rest =
                std::string_view(comment.text).substr(
                    pos + marker.size());
            pos += marker.size();
            auto bad = [&](const std::string &why) {
                diagnostics.push_back(
                    {file, comment.start_line, "bad-suppression", why,
                     "write '// qmh-lint: allow(<rule>): "
                     "<one-line justification>'"});
            };
            while (!rest.empty() &&
                   std::isspace(static_cast<unsigned char>(rest[0])))
                rest.remove_prefix(1);
            if (rest.substr(0, 6) != "allow(") {
                bad("malformed qmh-lint marker (expected 'allow(')");
                continue;
            }
            rest.remove_prefix(6);
            const std::size_t close = rest.find(')');
            if (close == std::string_view::npos) {
                bad("unterminated allow( in qmh-lint marker");
                continue;
            }
            const std::string rule(rest.substr(0, close));
            rest.remove_prefix(close + 1);
            if (!isContractRule(rule)) {
                bad("allow(" + rule + ") names no suppressible rule");
                continue;
            }
            // The justification is part of the contract: a bare
            // allow() hides a finding without leaving the reviewer
            // anything to judge.
            std::size_t text_start = 0;
            bool justified = false;
            if (!rest.empty() && rest[0] == ':') {
                for (text_start = 1; text_start < rest.size();
                     ++text_start)
                    if (!std::isspace(static_cast<unsigned char>(
                            rest[text_start]))) {
                        justified = true;
                        break;
                    }
            }
            if (!justified) {
                bad("allow(" + rule +
                    ") carries no justification — every suppression "
                    "must say why the finding is acceptable");
                continue;
            }
            Suppression suppression;
            suppression.rule = rule;
            suppression.comment_line = comment.start_line;
            suppression.target_line = comment.code_before
                                          ? comment.start_line
                                          : comment.end_line + 1;
            suppressions.push_back(std::move(suppression));
        }
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

bool
inSet(std::string_view text, std::initializer_list<const char *> set)
{
    for (const char *entry : set)
        if (text == entry)
            return true;
    return false;
}

/**
 * True when the identifier at @p i is a plain (or std::-qualified)
 * function use rather than a member or a foreign-namespace name —
 * `foo.time(...)` and `mylib::rand(...)` are somebody else's
 * functions; `time(...)` and `std::rand(...)` are the libc/std ones.
 */
bool
freeCall(const std::vector<Token> &tokens, std::size_t i)
{
    if (i + 1 >= tokens.size() || !tokens[i + 1].is("("))
        return false;
    if (i == 0)
        return true;
    const auto &prev = tokens[i - 1];
    if (prev.is(".") || prev.is("->"))
        return false;
    if (prev.is("::"))
        return i >= 2 && tokens[i - 2].is("std");
    return true;
}

void
ruleNoWallclock(const std::string &file,
                const std::vector<Token> &tokens,
                std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "no-wallclock";
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto &t = tokens[i];
        if (!t.ident())
            continue;
        if (t.is("random_device")) {
            diagnostics.push_back(
                {file, t.line, rule,
                 "std::random_device reads the host entropy pool",
                 "derive streams from a seeded qmh::Random instead"});
            continue;
        }
        const std::string_view text = t.text;
        const bool clock_type =
            text.size() > 6 &&
            text.substr(text.size() - 6) == "_clock";
        if (clock_type && i + 2 < tokens.size() &&
            tokens[i + 1].is("::") && tokens[i + 2].is("now")) {
            diagnostics.push_back(
                {file, tokens[i + 2].line, rule,
                 "reads " + std::string(text) +
                     "::now() — wall-clock state in simulation code",
                 "simulated time is the only time; for user-facing "
                 "elapsed-time display, suppress with justification"});
            continue;
        }
        if (t.is("now") && i + 1 < tokens.size() &&
            tokens[i + 1].is("(") && i > 0 && tokens[i - 1].is("::")) {
            // The *_clock::now() form is reported above; this arm
            // catches clock-shaped statics on other scopes. Instance
            // calls (queue.now()) are NOT flagged: in this codebase
            // an object with a now() is the simulated clock itself.
            const bool already =
                tokens[i - 1].is("::") && i >= 2 &&
                tokens[i - 2].text.size() > 6 &&
                tokens[i - 2].text.substr(tokens[i - 2].text.size() -
                                          6) == "_clock";
            if (already)
                continue;
            diagnostics.push_back(
                {file, t.line, rule,
                 "clock-style now() call",
                 "if this is not a clock read, rename the function "
                 "(e.g. Params::now() -> currentTechnology())"});
            continue;
        }
        if (inSet(text, {"time", "clock", "gettimeofday",
                         "clock_gettime", "timespec_get", "localtime",
                         "gmtime", "mktime", "strftime", "difftime"}) &&
            freeCall(tokens, i))
            diagnostics.push_back(
                {file, t.line, rule,
                 "calls " + std::string(text) +
                     "() — wall-clock or calendar state",
                 "simulation results must be a pure function of "
                 "(spec, seed)"});
    }
}

void
ruleNoRawRand(const std::string &file,
              const std::vector<Token> &tokens,
              std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "no-raw-rand";
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto &t = tokens[i];
        if (!t.ident())
            continue;
        if (inSet(t.text,
                  {"mt19937", "mt19937_64", "minstd_rand",
                   "minstd_rand0", "default_random_engine", "ranlux24",
                   "ranlux24_base", "ranlux48", "ranlux48_base",
                   "knuth_b", "mersenne_twister_engine",
                   "linear_congruential_engine",
                   "subtract_with_carry_engine"})) {
            if (i > 0 &&
                (tokens[i - 1].is(".") || tokens[i - 1].is("->")))
                continue;
            diagnostics.push_back(
                {file, t.line, rule,
                 "names the raw std engine " + std::string(t.text),
                 "std distributions are not bit-identical across "
                 "standard libraries; use qmh::Random"});
            continue;
        }
        if (inSet(t.text, {"rand", "srand", "random", "srandom",
                           "drand48", "lrand48", "mrand48", "rand_r"}) &&
            freeCall(tokens, i))
            diagnostics.push_back(
                {file, t.line, rule,
                 "calls " + std::string(t.text) +
                     "() — unseeded global RNG state",
                 "take a qmh::Random& so tests control the seed"});
    }
}

/**
 * Names declared with an unordered container type in @p tokens —
 * locals and members alike. Used both for the file under analysis and
 * for its companion header, so a member map declared in foo.hh is
 * known when foo.cc's range-fors are checked.
 */
std::vector<std::string>
unorderedNames(const std::vector<Token> &tokens)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!tokens[i].ident() ||
            !inSet(tokens[i].text,
                   {"unordered_map", "unordered_set",
                    "unordered_multimap", "unordered_multiset"}))
            continue;
        if (i + 1 >= tokens.size() || !tokens[i + 1].is("<"))
            continue;
        std::size_t depth = 1;
        std::size_t j = i + 2;
        while (j < tokens.size() && depth > 0) {
            if (tokens[j].is("<"))
                ++depth;
            else if (tokens[j].is(">"))
                --depth;
            ++j;
        }
        // j is one past the closing '>'. Nested member access
        // (::iterator and friends) is not a declaration.
        if (j < tokens.size() && tokens[j].is("::"))
            continue;
        while (j < tokens.size() &&
               (tokens[j].is("&") || tokens[j].is("*") ||
                tokens[j].is("const")))
            ++j;
        if (j < tokens.size() && tokens[j].ident() &&
            !(j + 1 < tokens.size() && tokens[j + 1].is("(")))
            names.emplace_back(tokens[j].text);
    }
    return names;
}

void
ruleOrderedIteration(const std::string &file,
                     const std::vector<Token> &tokens,
                     const std::vector<std::string> &seed_names,
                     bool strict,
                     std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "ordered-iteration";

    // Pass A: unordered names from this file plus any seeded from the
    // companion header (member containers iterated in the .cc).
    std::vector<std::string> names = unorderedNames(tokens);
    names.insert(names.end(), seed_names.begin(), seed_names.end());
    if (names.empty())
        return;

    // Pass B: range-for statements whose range expression mentions
    // one of those names.
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!tokens[i].is("for") || !tokens[i + 1].is("("))
            continue;
        std::size_t depth = 1;
        std::size_t colon = 0;
        std::size_t j = i + 2;
        while (j < tokens.size() && depth > 0) {
            if (tokens[j].is("("))
                ++depth;
            else if (tokens[j].is(")"))
                --depth;
            else if (tokens[j].is(":") && depth == 1 && !colon)
                colon = j;
            ++j;
        }
        if (!colon)
            continue;  // classic for loop
        for (std::size_t k = colon + 1; k < j; ++k) {
            if (!tokens[k].ident())
                continue;
            const bool known = std::any_of(
                names.begin(), names.end(),
                [&](const std::string &name) {
                    return std::string_view(name) == tokens[k].text;
                });
            if (!known)
                continue;
            diagnostics.push_back(
                {file, tokens[i].line, rule,
                 "range-for over the unordered container '" +
                     std::string(tokens[k].text) + "'",
                 "iterate an ordered snapshot (sort the keys first) "
                 "so hash-map layout cannot reach the output"});
            break;
        }
    }

    if (!strict)
        return;

    // Pass C (strict domains only): iterator extraction from an
    // unordered container. In arbitration code even a single
    // begin()/cbegin() leaks hash order into grant order, so the
    // range-for check alone is not enough.
    for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
        if (!tokens[i].ident())
            continue;
        const bool known = std::any_of(
            names.begin(), names.end(),
            [&](const std::string &name) {
                return std::string_view(name) == tokens[i].text;
            });
        if (!known)
            continue;
        if (!tokens[i + 1].is(".") && !tokens[i + 1].is("->"))
            continue;
        if (!inSet(tokens[i + 2].text,
                   {"begin", "cbegin", "rbegin", "crbegin"}) ||
            !tokens[i + 3].is("("))
            continue;
        diagnostics.push_back(
            {file, tokens[i].line, rule,
             "iterator into the unordered container '" +
                 std::string(tokens[i].text) +
                 "' in an arbitration domain",
             "strict domain (src/sim/): grant order must come from a "
             "FIFO deque or an ordered map, never from hash layout"});
    }
}

void
ruleTypedErrors(const std::string &file,
                const std::vector<Token> &tokens,
                std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "typed-errors";
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto &t = tokens[i];
        if (!t.ident())
            continue;
        if (t.is("throw")) {
            diagnostics.push_back(
                {file, t.line, rule,
                 "throw in the typed-error domain",
                 "return Outcome<T> (outcome.hh) so callers get a "
                 "typed, streamable failure"});
            continue;
        }
        if (t.is("qmh_panic") && i + 1 < tokens.size() &&
            tokens[i + 1].is("(")) {
            diagnostics.push_back(
                {file, t.line, rule,
                 "qmh_panic in the typed-error domain",
                 "request paths return Outcome; keep panics for "
                 "internal invariants and suppress with the reason"});
            continue;
        }
        if (inSet(t.text, {"exit", "_exit", "quick_exit", "abort",
                           "terminate"}) &&
            freeCall(tokens, i))
            diagnostics.push_back(
                {file, t.line, rule,
                 "calls " + std::string(t.text) +
                     "() in the typed-error domain",
                 "a request must fail as a value, not end the "
                 "process"});
    }
}

void
ruleBannedHeaders(const std::string &file, std::string_view raw,
                  std::string_view scrubbed,
                  std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "banned-headers";
    int line = 1;
    std::size_t begin = 0;
    while (begin <= scrubbed.size()) {
        std::size_t end = scrubbed.find('\n', begin);
        if (end == std::string_view::npos)
            end = scrubbed.size();
        // Recognize the directive on the scrubbed line (so a
        // commented-out include does not count), then read the header
        // name from the raw line ("..." forms are blanked in the
        // scrubbed copy).
        std::string_view code = scrubbed.substr(begin, end - begin);
        std::size_t p = code.find_first_not_of(" \t");
        if (p != std::string_view::npos && code[p] == '#') {
            p = code.find_first_not_of(" \t", p + 1);
            if (p != std::string_view::npos &&
                code.substr(p, 7) == "include") {
                std::string_view raw_line =
                    raw.substr(begin, end - begin);
                const std::size_t open =
                    raw_line.find_first_of("<\"", p + 7);
                if (open != std::string_view::npos) {
                    const char closer =
                        raw_line[open] == '<' ? '>' : '"';
                    const std::size_t close =
                        raw_line.find(closer, open + 1);
                    if (close != std::string_view::npos) {
                        const std::string_view header =
                            raw_line.substr(open + 1,
                                            close - open - 1);
                        if (inSet(header, {"ctime", "time.h",
                                           "sys/time.h", "random"}))
                            diagnostics.push_back(
                                {file, line, rule,
                                 "includes banned header <" +
                                     std::string(header) + ">",
                                 "everything it offers breaks "
                                 "determinism; qmh::Random and "
                                 "simulated time cover the valid "
                                 "uses"});
                    }
                }
            }
        }
        if (end == scrubbed.size())
            break;
        begin = end + 1;
        ++line;
    }
}

/**
 * lock-discipline: flag blocking calls made while a scoped lock is
 * live in an enclosing scope. Scope tracking is brace-depth based:
 * a lock declared at depth d dies with the '}' that closes depth d.
 * Heuristic by design — explicit .unlock() is not modeled (the tree
 * style is scoped locking), and a lambda *defined* under a lock is
 * treated as running under it, which for this codebase's immediate-
 * dispatch lambdas is the safe assumption.
 */
void
ruleLockDiscipline(const std::string &file,
                   const std::vector<Token> &tokens,
                   std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "lock-discipline";
    struct LiveLock
    {
        std::string_view name;
        int line;
        int depth;
    };
    std::vector<LiveLock> locks;
    int depth = 0;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto &t = tokens[i];
        if (t.is("{")) {
            ++depth;
            continue;
        }
        if (t.is("}")) {
            while (!locks.empty() && locks.back().depth >= depth)
                locks.pop_back();
            --depth;
            continue;
        }
        if (!t.ident())
            continue;
        if (inSet(t.text,
                  {"lock_guard", "unique_lock", "scoped_lock"})) {
            // Declaration shape: [std::]lock_guard[<...>] name ( | {
            // A default-constructed unique_lock holds nothing, so the
            // initializer is required for the lock to count as live.
            std::size_t j = i + 1;
            if (j < tokens.size() && tokens[j].is("<")) {
                std::size_t tdepth = 1;
                ++j;
                while (j < tokens.size() && tdepth > 0) {
                    if (tokens[j].is("<"))
                        ++tdepth;
                    else if (tokens[j].is(">"))
                        --tdepth;
                    ++j;
                }
            }
            if (j + 1 < tokens.size() && tokens[j].ident() &&
                (tokens[j + 1].is("(") || tokens[j + 1].is("{")))
                locks.push_back(
                    {tokens[j].text, tokens[j].line, depth});
            continue;
        }
        if (locks.empty())
            continue;
        // The sanctioned exception: a condition-variable wait ON a
        // live lock releases it for the duration of the block.
        if (t.is("wait") && i + 2 < tokens.size() &&
            tokens[i + 1].is("(")) {
            bool on_live_lock = false;
            for (const auto &lock : locks)
                if (tokens[i + 2].text == lock.name)
                    on_live_lock = true;
            if (on_live_lock)
                continue;
        }
        std::string what;
        if (inSet(t.text, {"poll", "read", "write", "wait", "simulate",
                           "runSpecSweep"}) &&
            i + 1 < tokens.size() && tokens[i + 1].is("("))
            what = std::string(t.text) + "()";
        else if (t.is("run") && i > 0 && tokens[i - 1].is("->") &&
                 i + 1 < tokens.size() && tokens[i + 1].is("("))
            what = "->run()";
        if (what.empty())
            continue;
        const auto &lock = locks.back();
        diagnostics.push_back(
            {file, t.line, rule,
             "calls " + what + " while the lock '" +
                 std::string(lock.name) + "' (line " +
                 std::to_string(lock.line) + ") is held",
             "copy what you need, drop the lock, then block — a "
             "blocking call under a lock stalls every other "
             "client/worker"});
    }
}

// ---------------------------------------------------------------------------
// Fact extraction for the whole-tree passes
// ---------------------------------------------------------------------------

/** Quoted #include directives with their lines (the module graph is
 * over project headers; <...> forms are banned-headers' business). */
std::vector<detail::IncludeEdge>
collectIncludes(std::string_view raw, std::string_view scrubbed)
{
    std::vector<detail::IncludeEdge> includes;
    int line = 1;
    std::size_t begin = 0;
    while (begin <= scrubbed.size()) {
        std::size_t end = scrubbed.find('\n', begin);
        if (end == std::string_view::npos)
            end = scrubbed.size();
        std::string_view code = scrubbed.substr(begin, end - begin);
        std::size_t p = code.find_first_not_of(" \t");
        if (p != std::string_view::npos && code[p] == '#') {
            p = code.find_first_not_of(" \t", p + 1);
            if (p != std::string_view::npos &&
                code.substr(p, 7) == "include") {
                std::string_view raw_line =
                    raw.substr(begin, end - begin);
                const std::size_t open =
                    raw_line.find_first_not_of(" \t", p + 7);
                if (open != std::string_view::npos &&
                    raw_line[open] == '"') {
                    const std::size_t close =
                        raw_line.find('"', open + 1);
                    if (close != std::string_view::npos)
                        includes.push_back(
                            {std::string(raw_line.substr(
                                 open + 1, close - open - 1)),
                             line});
                }
            }
        }
        if (end == scrubbed.size())
            break;
        begin = end + 1;
        ++line;
    }
    return includes;
}

/** Identifiers that can precede a '(' without being a callee, or sit
 * in a declaration's type position without being a type. */
bool
nonCalleeKeyword(std::string_view t)
{
    return inSet(
        t, {"if",        "while",     "for",       "switch",
            "return",    "throw",     "new",       "delete",
            "case",      "goto",      "else",      "do",
            "co_await",  "co_return", "co_yield",  "sizeof",
            "alignof",   "alignas",   "typeid",    "decltype",
            "noexcept",  "static_assert",          "operator",
            "explicit",  "virtual",   "static",    "inline",
            "friend",    "constexpr", "consteval", "constinit",
            "typename",  "class",     "struct",    "enum",
            "union",     "public",    "private",   "protected",
            "namespace", "using",     "typedef",   "template",
            "mutable",   "extern",    "thread_local",
            "volatile",  "and",       "or",        "not",
            "requires",  "concept",   "catch",     "assert",
            "defined"});
}

/**
 * Function declarations, split by return type: names declared to
 * return Outcome<...> vs anything else. The shape is
 * `<type> [&*const] [Qual::]*name (` — the plain side exists so the
 * tree pass can drop ambiguous names (declared both ways somewhere)
 * from the unchecked-outcome index: a token-level call site cannot
 * type its receiver, so only unambiguous names are actionable.
 */
void
collectDecls(const std::vector<Token> &tokens,
             std::vector<std::string> &outcome_decls,
             std::vector<std::string> &plain_decls)
{
    const std::size_t n = tokens.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (!tokens[i].ident() || i + 1 >= n || !tokens[i + 1].is("("))
            continue;
        if (nonCalleeKeyword(tokens[i].text))
            continue;
        // Walk back over the qualified-name chain to where the
        // return type ends.
        std::size_t p = i;
        while (p >= 2 && tokens[p - 1].is("::") &&
               tokens[p - 2].ident())
            p -= 2;
        if (p == 0)
            continue;
        // Skip ref/pointer/cv decorations between type and name.
        std::size_t q = p - 1;
        while (q > 0 && (tokens[q].is("&") || tokens[q].is("*") ||
                         tokens[q].is("const")))
            --q;
        if (tokens[q].is("&") || tokens[q].is("*") ||
            tokens[q].is("const"))
            continue;  // decorations ran into the file start
        if (tokens[q].is(">")) {
            // Template-id return type: find its head.
            std::size_t d = 1;
            std::size_t r = q;
            while (r > 0 && d > 0) {
                --r;
                if (tokens[r].is(">"))
                    ++d;
                else if (tokens[r].is("<"))
                    --d;
            }
            if (d != 0 || r == 0 || !tokens[r - 1].ident())
                continue;
            if (tokens[r - 1].is("Outcome"))
                outcome_decls.emplace_back(tokens[i].text);
            else
                plain_decls.emplace_back(tokens[i].text);
            continue;
        }
        if (tokens[q].ident() && !nonCalleeKeyword(tokens[q].text))
            plain_decls.emplace_back(tokens[i].text);
    }
}

/**
 * Calls discarded as bare expression-statements: the whole statement
 * is `receiver.chain->callee(args);` with the value going nowhere.
 * Records the callee name only — the tree pass decides which names
 * matter by intersecting with the Outcome index.
 */
std::vector<detail::BareCall>
collectBareCalls(const std::vector<Token> &tokens)
{
    std::vector<detail::BareCall> calls;
    const std::size_t n = tokens.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (!tokens[i].ident() || i + 1 >= n || !tokens[i + 1].is("("))
            continue;
        if (nonCalleeKeyword(tokens[i].text))
            continue;
        // The call's argument list must be the end of the statement.
        std::size_t depth = 1;
        std::size_t j = i + 2;
        while (j < n && depth > 0) {
            if (tokens[j].is("("))
                ++depth;
            else if (tokens[j].is(")"))
                --depth;
            ++j;
        }
        if (depth != 0 || j >= n || !tokens[j].is(";"))
            continue;
        // Walk back over the receiver chain (obj.member->f(),
        // ns::f(), chained calls) to the start of the expression.
        std::size_t p = i;
        while (p >= 2) {
            const auto &prev = tokens[p - 1];
            if (!prev.is(".") && !prev.is("->") && !prev.is("::"))
                break;
            if (tokens[p - 2].ident()) {
                p -= 2;
                continue;
            }
            if (tokens[p - 2].is(")")) {
                // Hop over a chained call: ... g(...) .f(...)
                std::size_t q = p - 2;
                std::size_t d = 1;
                while (q > 0 && d > 0) {
                    --q;
                    if (tokens[q].is(")"))
                        ++d;
                    else if (tokens[q].is("("))
                        --d;
                }
                if (d == 0 && q >= 1 && tokens[q - 1].ident()) {
                    p = q - 1;
                    continue;
                }
            }
            break;
        }
        // Only a value with nowhere to go counts: the chain must
        // begin a statement (`return f();`, `x = f();`, `int y =
        // f();` all use the result).
        const bool statement_start =
            p == 0 || tokens[p - 1].is(";") || tokens[p - 1].is("{") ||
            tokens[p - 1].is("}") || tokens[p - 1].is(")") ||
            tokens[p - 1].is(":") || tokens[p - 1].is("else") ||
            tokens[p - 1].is("do");
        if (statement_start)
            calls.push_back(
                {std::string(tokens[i].text), tokens[i].line});
    }
    return calls;
}

} // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

std::string
Diagnostic::format() const
{
    std::ostringstream out;
    out << file << ":" << line << ": [" << rule << "] " << message;
    if (!hint.empty())
        out << " (hint: " << hint << ")";
    return out.str();
}

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &info : rule_infos)
            out.emplace_back(info.id);
        out.emplace_back("bad-suppression");
        out.emplace_back("unused-suppression");
        return out;
    }();
    return names;
}

const char *
ruleDescription(std::string_view rule)
{
    for (const auto &info : rule_infos)
        if (rule == info.id)
            return info.description;
    if (rule == "bad-suppression")
        return "an allow() marker that is malformed, names no rule, "
               "or carries no justification";
    if (rule == "unused-suppression")
        return "an allow() marker that suppressed nothing — stale "
               "allowances must expire loudly";
    return nullptr;
}

namespace detail {

std::uint64_t
contentHash(std::string_view text)
{
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

void
sortUniqueDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    diagnostics.erase(
        std::unique(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic &a, const Diagnostic &b) {
                        return a.file == b.file && a.line == b.line &&
                               a.rule == b.rule &&
                               a.message == b.message;
                    }),
        diagnostics.end());
}

FileFacts
analyzeText(std::string_view policy_path, std::string_view text,
            const std::vector<std::string> &header_names,
            std::uint64_t header_hash)
{
    FileFacts facts;
    facts.path = std::string(policy_path);
    facts.hash = contentHash(text) * 0x100000001B3ULL ^ header_hash;

    const std::string file(policy_path);
    const Policy policy = policyFor(policy_path);

    const auto scrubbed = scrub(text);
    const auto tokens = tokenize(scrubbed.code);

    std::vector<Diagnostic> raw;
    if (policy.enabled("no-wallclock"))
        ruleNoWallclock(file, tokens, raw);
    if (policy.enabled("no-raw-rand"))
        ruleNoRawRand(file, tokens, raw);
    if (policy.enabled("ordered-iteration"))
        ruleOrderedIteration(file, tokens, header_names,
                             policy.ordered_iteration_strict, raw);
    if (policy.enabled("typed-errors"))
        ruleTypedErrors(file, tokens, raw);
    if (policy.enabled("banned-headers"))
        ruleBannedHeaders(file, text, scrubbed.code, raw);
    if (policy.enabled("lock-discipline"))
        ruleLockDiscipline(file, tokens, raw);

    facts.includes = collectIncludes(text, scrubbed.code);
    collectDecls(tokens, facts.outcome_decls, facts.plain_decls);
    facts.bare_calls = collectBareCalls(tokens);

    std::vector<Suppression> suppressions;
    collectSuppressions(file, scrubbed.comments, suppressions,
                        facts.local_diags);

    for (auto &diagnostic : raw) {
        bool suppressed = false;
        for (auto &suppression : suppressions) {
            if (isTreeRule(suppression.rule))
                continue;
            if (suppression.rule == diagnostic.rule &&
                suppression.target_line == diagnostic.line) {
                suppression.used = true;
                suppressed = true;
            }
        }
        if (!suppressed)
            facts.local_diags.push_back(std::move(diagnostic));
    }
    for (const auto &suppression : suppressions) {
        // Tree-rule markers are deferred: only the whole-tree passes
        // can tell a used suppression from a stale one.
        if (isTreeRule(suppression.rule)) {
            facts.tree_suppressions.push_back(
                {suppression.rule, suppression.comment_line,
                 suppression.target_line});
            continue;
        }
        if (suppression.used)
            continue;
        facts.local_diags.push_back(
            {file, suppression.comment_line, "unused-suppression",
             "allow(" + suppression.rule + ") suppressed nothing",
             "the finding it covered is gone — delete the marker"});
    }
    sortUniqueDiagnostics(facts.local_diags);
    return facts;
}

FileInput
readFileInput(const std::string &path)
{
    FileInput input;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return input;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    input.text = buffer.str();
    input.ok = true;

    // An implementation file iterates members its header declares;
    // per-file analysis would never see `std::unordered_map ... _m;`
    // from foo.hh while checking foo.cc's range-fors, and the facts
    // cache must invalidate when the header changes. Read the
    // companion (same stem, .hh/.h) alongside.
    const auto ext = std::filesystem::path(path).extension().string();
    if (ext == ".cc" || ext == ".cpp") {
        for (const char *header_ext : {".hh", ".h"}) {
            auto companion = std::filesystem::path(path);
            companion.replace_extension(header_ext);
            std::ifstream header(companion, std::ios::binary);
            if (!header)
                continue;
            std::ostringstream header_buffer;
            header_buffer << header.rdbuf();
            input.header_text = header_buffer.str();
            break;
        }
    }
    return input;
}

std::uint64_t
inputHash(const FileInput &input)
{
    return contentHash(input.text) * 0x100000001B3ULL ^
           contentHash(input.header_text);
}

FileFacts
analyzeInput(const std::string &path, const FileInput &input)
{
    std::vector<std::string> header_names;
    if (!input.header_text.empty()) {
        // Keep the scrub result alive while tokens (string_views
        // into its code buffer) are read.
        const auto header_scrubbed = scrub(input.header_text);
        header_names = unorderedNames(tokenize(header_scrubbed.code));
    }
    return analyzeText(path, input.text, header_names,
                       contentHash(input.header_text));
}

FileFacts
analyzeFile(const std::string &path)
{
    const FileInput input = readFileInput(path);
    if (!input.ok) {
        FileFacts facts;
        facts.path = path;
        facts.io_error = true;
        facts.local_diags.push_back(
            {path, 0, "io-error", "cannot read file", ""});
        return facts;
    }
    return analyzeInput(path, input);
}

} // namespace detail

Report
lintText(std::string_view policy_path, std::string_view text)
{
    const auto facts =
        detail::analyzeText(policy_path, text, {},
                            detail::contentHash(std::string_view()));
    Report report;
    report.files_scanned = 1;
    report.files_parsed = 1;
    report.diagnostics = facts.local_diags;
    return report;
}

Report
lintFile(const std::string &path)
{
    auto facts = detail::analyzeFile(path);
    Report report;
    if (!facts.io_error) {
        report.files_scanned = 1;
        report.files_parsed = 1;
    }
    report.diagnostics = std::move(facts.local_diags);
    return report;
}

} // namespace lint
} // namespace qmh
