/**
 * @file
 * SARIF 2.1.0 emission: one run, rule metadata from the registry, one
 * result per diagnostic. The output is deterministic (diagnostics are
 * already in canonical order and rules are emitted registry-first,
 * extras sorted), so the same report always yields the same bytes —
 * CI can diff or cache the document like any other artifact.
 */

#include "qmh_lint/lint.hh"

#include <set>
#include <sstream>

#include "sweep/emit.hh"

namespace qmh {
namespace lint {

namespace {

/** Stable result severity: contract findings are errors; the meta
 * rules mark housekeeping problems and map to warning. */
const char *
sarifLevel(const std::string &rule)
{
    if (rule == "unused-suppression" || rule == "bad-suppression")
        return "warning";
    return "error";
}

} // namespace

std::string
toSarif(const Report &report)
{
    // Registry rules first, then any extra ids the report carries
    // (io-error), sorted — reportingDescriptor order is part of the
    // deterministic-bytes contract.
    std::vector<std::string> rules = ruleNames();
    std::set<std::string> known(rules.begin(), rules.end());
    std::set<std::string> extras;
    for (const auto &diagnostic : report.diagnostics)
        if (!known.count(diagnostic.rule))
            extras.insert(diagnostic.rule);
    rules.insert(rules.end(), extras.begin(), extras.end());

    std::ostringstream out;
    out << "{\"$schema\":\"https://json.schemastore.org/"
           "sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{"
           "\"tool\":{\"driver\":{\"name\":\"qmh-lint\","
           "\"informationUri\":"
        << sweep::jsonQuote("https://example.invalid/qmh-lint")
        << ",\"rules\":[";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const char *description = ruleDescription(rules[i]);
        out << (i ? "," : "") << "{\"id\":"
            << sweep::jsonQuote(rules[i])
            << ",\"shortDescription\":{\"text\":"
            << sweep::jsonQuote(description
                                    ? description
                                    : "reported outside the rule "
                                      "registry")
            << "}}";
    }
    out << "]}},\"results\":[";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const auto &diagnostic = report.diagnostics[i];
        std::string text = diagnostic.message;
        if (!diagnostic.hint.empty())
            text += " (hint: " + diagnostic.hint + ")";
        // SARIF regions are 1-based; the io-error pseudo-line 0 pins
        // to the top of the file.
        const int line = diagnostic.line > 0 ? diagnostic.line : 1;
        out << (i ? "," : "") << "{\"ruleId\":"
            << sweep::jsonQuote(diagnostic.rule) << ",\"level\":\""
            << sarifLevel(diagnostic.rule)
            << "\",\"message\":{\"text\":" << sweep::jsonQuote(text)
            << "},\"locations\":[{\"physicalLocation\":{"
               "\"artifactLocation\":{\"uri\":"
            << sweep::jsonQuote(diagnostic.file)
            << "},\"region\":{\"startLine\":" << line << "}}}]}";
    }
    out << "]}]}";
    return out.str();
}

} // namespace lint
} // namespace qmh
