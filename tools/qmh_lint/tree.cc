/**
 * @file
 * The whole-tree lint engine: parallel fact extraction over the
 * sweep::ThreadPool, the content-hash facts cache, and the two
 * cross-file passes (layering over the module include graph,
 * unchecked-outcome over the Outcome function index).
 *
 * Determinism contract: the report is bit-identical at any thread
 * count and any cache temperature. Workers only fill slot i of a
 * pre-sized facts vector (files are sorted first), every cross-file
 * pass iterates facts in that order, and the merged diagnostics get
 * one final canonical sort.
 */

#include "qmh_lint/lint.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/json.hh"
#include "qmh_lint/internal.hh"
#include "sweep/emit.hh"
#include "sweep/thread_pool.hh"

namespace qmh {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Module names
// ---------------------------------------------------------------------------

/**
 * The module a file belongs to: the path component right after the
 * last "src/" component ("src/api/spec.cc" -> "api"). Empty for files
 * outside any src/ tree (tests, benches, tools) — they are linted by
 * the per-file rules but take no part in the module graph.
 */
std::string
moduleOf(const std::string &path)
{
    std::size_t pos = std::string::npos;
    std::size_t search = 0;
    while (true) {
        const auto hit = path.find("src/", search);
        if (hit == std::string::npos)
            break;
        if (hit == 0 || path[hit - 1] == '/')
            pos = hit;
        search = hit + 1;
    }
    if (pos == std::string::npos)
        return "";
    const std::size_t mod_begin = pos + 4;
    const auto slash = path.find('/', mod_begin);
    if (slash == std::string::npos)
        return "";  // a file directly in src/ belongs to no module
    return path.substr(mod_begin, slash - mod_begin);
}

/** Module a quoted include names: "api/spec.hh" -> "api". Includes
 * are resolved against -Isrc, so the first component IS the module. */
std::string
includeModule(const std::string &header)
{
    const auto slash = header.find('/');
    if (slash == std::string::npos || slash == 0)
        return "";
    return header.substr(0, slash);
}

// ---------------------------------------------------------------------------
// Layer policy
// ---------------------------------------------------------------------------

struct LayerPolicy
{
    std::map<std::string, int> tier;  ///< module -> tier (0 = bottom)
    std::set<std::pair<std::string, std::string>> forbidden;
    std::vector<Diagnostic> errors;   ///< parse problems, as findings
};

void
splitWords(const std::string &text, std::vector<std::string> &words)
{
    std::istringstream in(text);
    std::string word;
    while (in >> word)
        words.push_back(word);
}

LayerPolicy
parseLayerPolicy(std::string_view text)
{
    LayerPolicy policy;
    int tier_count = 0;
    int line_no = 0;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        auto end = text.find('\n', begin);
        if (end == std::string_view::npos)
            end = text.size();
        std::string line(text.substr(begin, end - begin));
        ++line_no;
        const bool last = end == text.size();
        begin = end + 1;

        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::vector<std::string> words;
        splitWords(line, words);
        auto bad = [&](const std::string &why) {
            policy.errors.push_back(
                {"<layer-policy>", line_no, "layering", why,
                 "policy lines: 'layer <module>...' (bottom tier "
                 "first) or 'forbid <from>: <to>...'"});
        };
        if (words.empty()) {
            if (last)
                break;
            continue;
        }
        if (words[0] == "layer") {
            if (words.size() < 2) {
                bad("'layer' line declares no modules");
            } else {
                for (std::size_t i = 1; i < words.size(); ++i) {
                    if (!policy.tier.emplace(words[i], tier_count)
                             .second)
                        bad("module '" + words[i] +
                            "' declared in two layers");
                }
                ++tier_count;
            }
        } else if (words[0] == "forbid") {
            const auto colon = line.find(':');
            if (colon == std::string::npos) {
                bad("'forbid' line needs '<from>: <to>...'");
            } else {
                std::vector<std::string> from_words;
                splitWords(line.substr(6, colon - 6), from_words);
                std::vector<std::string> to_words;
                splitWords(line.substr(colon + 1), to_words);
                if (from_words.size() != 1 || to_words.empty()) {
                    bad("'forbid' line needs '<from>: <to>...'");
                } else {
                    auto declared = [&](const std::string &m) {
                        if (policy.tier.count(m))
                            return true;
                        bad("forbid names undeclared module '" + m +
                            "'");
                        return false;
                    };
                    if (declared(from_words[0]))
                        for (const auto &to : to_words)
                            if (declared(to))
                                policy.forbidden.emplace(
                                    from_words[0], to);
                }
            }
        } else {
            bad("unknown directive '" + words[0] + "'");
        }
        if (last)
            break;
    }
    return policy;
}

// ---------------------------------------------------------------------------
// Tree suppressions
// ---------------------------------------------------------------------------

/** Deferred allow(layering)/allow(unchecked-outcome) markers, matched
 * here because only the tree passes know the findings. */
struct TreeSuppressions
{
    struct Entry
    {
        detail::TreeSuppression marker;
        bool used = false;
    };
    std::map<std::string, std::vector<Entry>> by_path;

    void
    collect(const std::vector<detail::FileFacts> &all)
    {
        for (const auto &facts : all)
            for (const auto &marker : facts.tree_suppressions)
                by_path[facts.path].push_back({marker, false});
    }

    /** True (and marks the marker used) when (path, rule, line) is
     * covered by an allow(). */
    bool
    covers(const std::string &path, std::string_view rule, int line)
    {
        auto it = by_path.find(path);
        if (it == by_path.end())
            return false;
        bool hit = false;
        for (auto &entry : it->second)
            if (entry.marker.rule == rule &&
                entry.marker.target_line == line) {
                entry.used = true;
                hit = true;
            }
        return hit;
    }

    /** Marks every marker for `rule` as used without matching a
     * finding. Called when a pass is skipped (broken layer policy):
     * markers it would have judged are unjudgeable, not stale. */
    void
    excuseRule(std::string_view rule)
    {
        for (auto &[path, entries] : by_path)
            for (auto &entry : entries)
                if (entry.marker.rule == rule)
                    entry.used = true;
    }

    /** Stale markers become unused-suppression findings, same as the
     * per-file rules. Iterates facts (sorted) for determinism. */
    void
    reportUnused(const std::vector<detail::FileFacts> &all,
                 std::vector<Diagnostic> &diagnostics)
    {
        for (const auto &facts : all) {
            auto it = by_path.find(facts.path);
            if (it == by_path.end())
                continue;
            for (const auto &entry : it->second) {
                if (entry.used)
                    continue;
                diagnostics.push_back(
                    {facts.path, entry.marker.comment_line,
                     "unused-suppression",
                     "allow(" + entry.marker.rule +
                         ") suppressed nothing",
                     "the finding it covered is gone — delete the "
                     "marker"});
            }
        }
    }
};

// ---------------------------------------------------------------------------
// Pass: layering
// ---------------------------------------------------------------------------

void
passLayering(const std::vector<detail::FileFacts> &all,
             const LayerPolicy &policy, TreeSuppressions &suppressions,
             std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "layering";
    diagnostics.insert(diagnostics.end(), policy.errors.begin(),
                       policy.errors.end());
    if (!policy.errors.empty()) {
        // A broken policy cannot judge the graph, so it cannot judge
        // the graph's suppressions either.
        suppressions.excuseRule(rule);
        return;
    }

    // Peer (same-tier) edges feed cycle detection. Strictly downward
    // edges cannot close a cycle without an upward edge somewhere,
    // and every upward edge is already a finding of its own.
    struct Site
    {
        std::string file;
        int line;
    };
    std::map<std::pair<std::string, std::string>, Site> peer_edges;

    for (const auto &facts : all) {
        const auto from = moduleOf(facts.path);
        const auto from_it = policy.tier.find(from);
        if (from_it == policy.tier.end())
            continue;
        for (const auto &include : facts.includes) {
            const auto to = includeModule(include.header);
            if (to == from)
                continue;
            const auto to_it = policy.tier.find(to);
            if (to_it == policy.tier.end())
                continue;
            if (to_it->second > from_it->second) {
                if (!suppressions.covers(facts.path, rule,
                                         include.line))
                    diagnostics.push_back(
                        {facts.path, include.line, rule,
                         "upward dependency: '" + from + "' (tier " +
                             std::to_string(from_it->second) +
                             ") includes \"" + include.header +
                             "\" from '" + to + "' (tier " +
                             std::to_string(to_it->second) + ")",
                         "a lower layer must not know the one above "
                         "it — move the shared type down or invert "
                         "the dependency"});
                continue;
            }
            if (policy.forbidden.count({from, to})) {
                if (!suppressions.covers(facts.path, rule,
                                         include.line))
                    diagnostics.push_back(
                        {facts.path, include.line, rule,
                         "facade bypass: '" + from +
                             "' must not include \"" +
                             include.header + "\" ('" + to +
                             "' is forbidden by the layer policy)",
                         "route through the api/sweep facade "
                         "instead of reaching into the engines"});
                continue;
            }
            if (to_it->second == from_it->second)
                peer_edges.emplace(std::make_pair(from, to),
                                   Site{facts.path, include.line});
        }
    }

    // Cycle detection over the peer-edge graph (deterministic: module
    // names and adjacency both iterate in sorted order).
    std::map<std::string, std::vector<std::string>> adjacency;
    for (const auto &[edge, site] : peer_edges)
        adjacency[edge.first].push_back(edge.second);

    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    auto dfs = [&](auto &&self, const std::string &module) -> void {
        color[module] = 1;
        stack.push_back(module);
        for (const auto &next : adjacency[module]) {
            if (color[next] == 2)
                continue;
            if (color[next] == 1) {
                // Back edge module -> next closes a cycle; name the
                // whole loop and anchor the finding on the closing
                // include.
                std::string path;
                for (auto it = std::find(stack.begin(), stack.end(),
                                         next);
                     it != stack.end(); ++it)
                    path += *it + " -> ";
                path += next;
                const auto &site = peer_edges.at({module, next});
                if (!suppressions.covers(site.file, rule, site.line))
                    diagnostics.push_back(
                        {site.file, site.line, rule,
                         "include cycle among peer modules: " + path,
                         "one side must own the shared interface — "
                         "break the loop or merge the modules"});
                continue;
            }
            self(self, next);
        }
        stack.pop_back();
        color[module] = 2;
    };
    for (const auto &[module, targets] : adjacency)
        if (color[module] == 0)
            dfs(dfs, module);
}

// ---------------------------------------------------------------------------
// Pass: unchecked-outcome
// ---------------------------------------------------------------------------

void
passUncheckedOutcome(const std::vector<detail::FileFacts> &all,
                     TreeSuppressions &suppressions,
                     std::vector<Diagnostic> &diagnostics)
{
    constexpr const char *rule = "unchecked-outcome";

    // The index: names declared in src/ modules to return
    // Outcome<...>, minus any name also declared with another return
    // type (a token-level call site cannot type its receiver, so
    // ambiguous names — ThreadPool::submit vs Session::submit — are
    // left to the [[nodiscard]] attribute and the compiler).
    std::set<std::string> outcome_names;
    std::set<std::string> plain_names;
    for (const auto &facts : all) {
        if (moduleOf(facts.path).empty())
            continue;
        outcome_names.insert(facts.outcome_decls.begin(),
                             facts.outcome_decls.end());
        plain_names.insert(facts.plain_decls.begin(),
                           facts.plain_decls.end());
    }
    std::set<std::string> index;
    for (const auto &name : outcome_names)
        if (!plain_names.count(name))
            index.insert(name);

    for (const auto &facts : all) {
        if (moduleOf(facts.path).empty())
            continue;
        for (const auto &call : facts.bare_calls) {
            if (!index.count(call.name))
                continue;
            if (suppressions.covers(facts.path, rule, call.line))
                continue;
            diagnostics.push_back(
                {facts.path, call.line, rule,
                 "discards the Outcome<...> returned by '" +
                     call.name + "' — a dropped Outcome drops its "
                                 "failure with it",
                 "check ok()/error() (or bind the value); if the "
                 "result truly does not matter, suppress with the "
                 "reason"});
        }
    }
}

// ---------------------------------------------------------------------------
// Facts cache (JSONL, content-hash keyed)
// ---------------------------------------------------------------------------

constexpr const char *kCacheFormat = "qmh-lint-facts-v1";

std::string
hashToHex(std::uint64_t hash)
{
    char buffer[20];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buffer;
}

std::map<std::string, detail::FileFacts>
loadCache(const std::string &path)
{
    std::map<std::string, detail::FileFacts> cache;
    if (path.empty())
        return cache;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return cache;
    std::string line;
    if (!std::getline(in, line))
        return cache;
    const auto header = json::parse(line);
    if (!header.ok())
        return cache;
    const auto *format = header.value.find("format");
    if (!format || !format->isString() ||
        format->string() != kCacheFormat)
        return cache;  // other versions: start cold
    while (std::getline(in, line)) {
        detail::FileFacts facts;
        if (detail::factsFromJson(line, facts))
            cache[facts.path] = std::move(facts);
    }
    return cache;
}

void
writeCache(const std::string &path,
           const std::vector<detail::FileFacts> &all)
{
    if (path.empty())
        return;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return;  // an unwritable cache only costs the next warm run
    out << "{\"format\":" << sweep::jsonQuote(kCacheFormat) << "}\n";
    for (const auto &facts : all) {
        if (facts.io_error)
            continue;  // unreadable files are re-attempted every run
        out << detail::factsToJson(facts) << "\n";
    }
}

// ---------------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------------

std::vector<std::string>
collectFiles(const std::vector<std::string> &roots,
             std::vector<std::string> &missing_roots)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    auto wanted = [](const fs::path &p) {
        const auto ext = p.extension().string();
        return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
               ext == ".h";
    };
    for (const auto &root : roots) {
        if (fs::is_regular_file(root)) {
            files.push_back(root);
            continue;
        }
        if (!fs::is_directory(root)) {
            // A typo'd root must never read as a clean tree.
            missing_roots.push_back(root);
            continue;
        }
        for (auto it = fs::recursive_directory_iterator(root);
             it != fs::recursive_directory_iterator(); ++it) {
            const auto name = it->path().filename().string();
            if (it->is_directory() &&
                (name == "lint_fixtures" || name == "build" ||
                 (!name.empty() && name[0] == '.'))) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && wanted(it->path()))
                files.push_back(it->path().string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

} // namespace

// ---------------------------------------------------------------------------
// Facts (de)serialization
// ---------------------------------------------------------------------------

namespace detail {

std::string
factsToJson(const FileFacts &facts)
{
    std::ostringstream out;
    out << "{\"path\":" << sweep::jsonQuote(facts.path)
        << ",\"hash\":\"" << hashToHex(facts.hash) << "\"";
    out << ",\"diags\":[";
    for (std::size_t i = 0; i < facts.local_diags.size(); ++i) {
        const auto &d = facts.local_diags[i];
        out << (i ? "," : "") << "[" << d.line << ","
            << sweep::jsonQuote(d.rule) << ","
            << sweep::jsonQuote(d.message) << ","
            << sweep::jsonQuote(d.hint) << "]";
    }
    out << "],\"includes\":[";
    for (std::size_t i = 0; i < facts.includes.size(); ++i)
        out << (i ? "," : "") << "["
            << sweep::jsonQuote(facts.includes[i].header) << ","
            << facts.includes[i].line << "]";
    out << "],\"outcome\":[";
    for (std::size_t i = 0; i < facts.outcome_decls.size(); ++i)
        out << (i ? "," : "")
            << sweep::jsonQuote(facts.outcome_decls[i]);
    out << "],\"plain\":[";
    for (std::size_t i = 0; i < facts.plain_decls.size(); ++i)
        out << (i ? "," : "")
            << sweep::jsonQuote(facts.plain_decls[i]);
    out << "],\"calls\":[";
    for (std::size_t i = 0; i < facts.bare_calls.size(); ++i)
        out << (i ? "," : "") << "["
            << sweep::jsonQuote(facts.bare_calls[i].name) << ","
            << facts.bare_calls[i].line << "]";
    out << "],\"supp\":[";
    for (std::size_t i = 0; i < facts.tree_suppressions.size(); ++i) {
        const auto &s = facts.tree_suppressions[i];
        out << (i ? "," : "") << "[" << sweep::jsonQuote(s.rule)
            << "," << s.comment_line << "," << s.target_line << "]";
    }
    out << "]}";
    return out.str();
}

bool
factsFromJson(const std::string &line, FileFacts &facts)
{
    const auto parsed = json::parse(line);
    if (!parsed.ok() || !parsed.value.isObject())
        return false;
    const auto &doc = parsed.value;

    auto str = [](const json::Value *v, std::string &out) {
        if (!v || !v->isString())
            return false;
        out = v->string();
        return true;
    };
    auto num = [](const json::Value &v, int &out) {
        if (!v.isNumber())
            return false;
        out = static_cast<int>(v.number());
        return true;
    };

    std::string hash_hex;
    if (!str(doc.find("path"), facts.path) ||
        !str(doc.find("hash"), hash_hex))
        return false;
    facts.hash = std::strtoull(hash_hex.c_str(), nullptr, 16);

    const auto *diags = doc.find("diags");
    const auto *includes = doc.find("includes");
    const auto *outcome = doc.find("outcome");
    const auto *plain = doc.find("plain");
    const auto *calls = doc.find("calls");
    const auto *supp = doc.find("supp");
    for (const auto *field :
         {diags, includes, outcome, plain, calls, supp})
        if (!field || !field->isArray())
            return false;

    for (const auto &item : diags->items()) {
        if (!item.isArray() || item.items().size() != 4)
            return false;
        Diagnostic d;
        d.file = facts.path;
        if (!num(item.items()[0], d.line) ||
            !str(&item.items()[1], d.rule) ||
            !str(&item.items()[2], d.message) ||
            !str(&item.items()[3], d.hint))
            return false;
        facts.local_diags.push_back(std::move(d));
    }
    for (const auto &item : includes->items()) {
        if (!item.isArray() || item.items().size() != 2)
            return false;
        IncludeEdge edge;
        if (!str(&item.items()[0], edge.header) ||
            !num(item.items()[1], edge.line))
            return false;
        facts.includes.push_back(std::move(edge));
    }
    for (const auto &item : outcome->items()) {
        std::string name;
        if (!str(&item, name))
            return false;
        facts.outcome_decls.push_back(std::move(name));
    }
    for (const auto &item : plain->items()) {
        std::string name;
        if (!str(&item, name))
            return false;
        facts.plain_decls.push_back(std::move(name));
    }
    for (const auto &item : calls->items()) {
        if (!item.isArray() || item.items().size() != 2)
            return false;
        BareCall call;
        if (!str(&item.items()[0], call.name) ||
            !num(item.items()[1], call.line))
            return false;
        facts.bare_calls.push_back(std::move(call));
    }
    for (const auto &item : supp->items()) {
        if (!item.isArray() || item.items().size() != 3)
            return false;
        TreeSuppression marker;
        if (!str(&item.items()[0], marker.rule) ||
            !num(item.items()[1], marker.comment_line) ||
            !num(item.items()[2], marker.target_line))
            return false;
        facts.tree_suppressions.push_back(std::move(marker));
    }
    return true;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

const char *
defaultLayerPolicy()
{
    return
        "# qmh architecture layers, bottom tier first. A module may\n"
        "# include its own tier and any tier below it.\n"
        "layer common\n"
        "layer circuit sched sim cache iontrap gen\n"
        "layer cqla ecc net trace\n"
        "layer api sweep\n"
        "layer opt server\n"
        "# Facade-bypass discipline: the top tier talks to the\n"
        "# system through api/sweep, never straight into the\n"
        "# engines.\n"
        "forbid opt: circuit sched sim cache iontrap gen cqla ecc "
        "net trace\n"
        "forbid server: circuit sched sim cache iontrap gen cqla "
        "ecc net trace\n";
}

Report
lintTree(const std::vector<std::string> &roots,
         const TreeOptions &options)
{
    std::vector<std::string> missing_roots;
    const auto files = collectFiles(roots, missing_roots);
    const auto cache = loadCache(options.cache_path);

    // Parallel per-file analysis. Slot i belongs to files[i] alone,
    // so no ordering decision ever depends on thread scheduling.
    std::vector<detail::FileFacts> all(files.size());
    std::vector<char> from_cache(files.size(), 0);
    {
        sweep::ThreadPool pool(options.threads);
        for (std::size_t i = 0; i < files.size(); ++i)
            pool.submit([&, i] {
                const auto input = detail::readFileInput(files[i]);
                if (!input.ok) {
                    all[i].path = files[i];
                    all[i].io_error = true;
                    all[i].local_diags.push_back(
                        {files[i], 0, "io-error", "cannot read file",
                         ""});
                    return;
                }
                const auto hash = detail::inputHash(input);
                const auto hit = cache.find(files[i]);
                if (hit != cache.end() &&
                    hit->second.hash == hash) {
                    all[i] = hit->second;
                    from_cache[i] = 1;
                    return;
                }
                all[i] = detail::analyzeInput(files[i], input);
            });
        pool.wait();
    }

    Report report;
    for (const auto &root : missing_roots)
        report.diagnostics.push_back(
            {root, 0, "io-error", "no such file or directory", ""});
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (all[i].io_error)
            continue;
        ++report.files_scanned;
        if (from_cache[i])
            ++report.files_cached;
        else
            ++report.files_parsed;
    }
    for (const auto &facts : all)
        report.diagnostics.insert(report.diagnostics.end(),
                                  facts.local_diags.begin(),
                                  facts.local_diags.end());

    TreeSuppressions suppressions;
    suppressions.collect(all);
    const auto policy = parseLayerPolicy(
        options.layer_policy.empty() ? defaultLayerPolicy()
                                     : options.layer_policy.c_str());
    passLayering(all, policy, suppressions, report.diagnostics);
    passUncheckedOutcome(all, suppressions, report.diagnostics);
    suppressions.reportUnused(all, report.diagnostics);

    detail::sortUniqueDiagnostics(report.diagnostics);
    writeCache(options.cache_path, all);
    return report;
}

Report
lintTree(const std::vector<std::string> &roots)
{
    return lintTree(roots, TreeOptions{});
}

} // namespace lint
} // namespace qmh
