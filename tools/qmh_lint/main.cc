/**
 * @file
 * qmh_lint CLI: lint the given files/directories and report every
 * finding as file:line: [rule] message. Exit 0 when clean, 1 when
 * there are findings, 2 on usage errors — so it slots into CTest and
 * CI as a pass/fail gate.
 *
 *   qmh_lint src bench examples tests
 *   qmh_lint --list-rules
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "qmh_lint/lint.hh"

namespace {

void
usage(std::ostream &out)
{
    out << "usage: qmh_lint [--list-rules] <file-or-dir>...\n"
        << "Static analysis for the qmh determinism & typed-error "
           "contracts.\n"
        << "Suppress a finding with\n"
        << "  // qmh-lint: allow(<rule>): <one-line justification>\n"
        << "on the offending line or alone on the line above.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const auto &rule : qmh::lint::ruleNames())
                std::cout << rule << "\n    "
                          << qmh::lint::ruleDescription(rule) << "\n";
            return 0;
        }
        if (argv[i][0] == '-') {
            std::cerr << "qmh_lint: unknown option '" << argv[i]
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
        roots.emplace_back(argv[i]);
    }
    if (roots.empty()) {
        usage(std::cerr);
        return 2;
    }

    const auto report = qmh::lint::lintTree(roots);
    for (const auto &diagnostic : report.diagnostics)
        std::cout << diagnostic.format() << "\n";
    std::cerr << "qmh_lint: " << report.diagnostics.size()
              << " finding(s) in " << report.files_scanned
              << " file(s)\n";
    return report.clean() ? 0 : 1;
}
