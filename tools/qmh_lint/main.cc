/**
 * @file
 * qmh_lint CLI: lint the given files/directories and report every
 * finding as file:line: [rule] message (or as a SARIF 2.1.0 document
 * with --format=sarif). Exit codes are distinct per failure class so
 * CI can tell a dirty tree from a broken invocation:
 *
 *   0  clean
 *   1  findings reported
 *   2  usage error (unknown option, bad value, no roots)
 *   3  I/O error (a root or explicit file could not be read)
 *
 *   qmh_lint src bench examples tests
 *   qmh_lint --threads=8 --cache=build/lint_cache.jsonl src
 *   qmh_lint --format=sarif src > lint.sarif
 *   qmh_lint --layers=my_policy.txt src
 *   qmh_lint --list-rules
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qmh_lint/lint.hh"

namespace {

void
usage(std::ostream &out)
{
    out << "usage: qmh_lint [options] <file-or-dir>...\n"
        << "Static analysis for the qmh determinism, typed-error and "
           "architecture contracts.\n"
        << "options:\n"
        << "  --list-rules        print every rule and exit\n"
        << "  --threads=N         worker threads (0 = one per core; "
           "report is identical at any N)\n"
        << "  --cache=FILE        JSONL facts cache; warm re-lints "
           "of an unchanged tree parse zero files\n"
        << "  --format=text|sarif output format (default text)\n"
        << "  --layers=FILE       layer policy file (default: "
           "built-in src/ policy; --print-layers shows it)\n"
        << "  --print-layers      print the built-in layer policy "
           "and exit\n"
        << "Suppress a finding with\n"
        << "  // qmh-lint: allow(<rule>): <one-line justification>\n"
        << "on the offending line or alone on the line above.\n";
}

/** Value of "--opt=value" when @p arg starts with "--opt=". */
bool
optValue(const char *arg, const char *name, std::string &value)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    value = arg + n + 1;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    qmh::lint::TreeOptions options;
    bool sarif = false;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const auto &rule : qmh::lint::ruleNames())
                std::cout << rule << "\n    "
                          << qmh::lint::ruleDescription(rule) << "\n";
            return 0;
        }
        if (std::strcmp(argv[i], "--print-layers") == 0) {
            std::cout << qmh::lint::defaultLayerPolicy();
            return 0;
        }
        if (optValue(argv[i], "--threads", value)) {
            char *end = nullptr;
            const long threads = std::strtol(value.c_str(), &end, 10);
            if (!end || *end != '\0' || threads < 0 ||
                threads > 1024) {
                std::cerr << "qmh_lint: bad --threads value '"
                          << value << "'\n";
                return 2;
            }
            options.threads = static_cast<unsigned>(threads);
            continue;
        }
        if (optValue(argv[i], "--cache", value)) {
            options.cache_path = value;
            continue;
        }
        if (optValue(argv[i], "--format", value)) {
            if (value == "sarif") {
                sarif = true;
            } else if (value != "text") {
                std::cerr << "qmh_lint: unknown format '" << value
                          << "' (expected text or sarif)\n";
                return 2;
            }
            continue;
        }
        if (optValue(argv[i], "--layers", value)) {
            std::ifstream in(value, std::ios::binary);
            if (!in) {
                std::cerr << "qmh_lint: cannot read layer policy '"
                          << value << "'\n";
                return 3;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            options.layer_policy = buffer.str();
            continue;
        }
        if (argv[i][0] == '-') {
            std::cerr << "qmh_lint: unknown option '" << argv[i]
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
        roots.emplace_back(argv[i]);
    }
    if (roots.empty()) {
        usage(std::cerr);
        return 2;
    }

    const auto report = qmh::lint::lintTree(roots, options);

    // An explicit root the engine could not read is an invocation
    // problem, not a lint finding: report it on its own exit code so
    // CI never mistakes a typo'd path for a clean tree.
    bool io_error = false;
    for (const auto &diagnostic : report.diagnostics)
        if (diagnostic.rule == "io-error")
            io_error = true;

    if (sarif) {
        std::cout << qmh::lint::toSarif(report) << "\n";
    } else {
        for (const auto &diagnostic : report.diagnostics)
            std::cout << diagnostic.format() << "\n";
    }
    std::cerr << "qmh_lint: " << report.diagnostics.size()
              << " finding(s) in " << report.files_scanned
              << " file(s) (" << report.files_parsed << " parsed, "
              << report.files_cached << " cached)\n";
    if (io_error)
        return 3;
    return report.clean() ? 0 : 1;
}
