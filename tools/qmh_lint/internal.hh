/**
 * @file
 * qmh-lint internals: the seam between the per-file engine (lint.cc —
 * scrubber, tokenizer, token rules, fact extraction) and the
 * whole-tree engine (tree.cc — layering, unchecked-outcome, the
 * parallel driver and the facts cache).
 *
 * The unit of work is FileFacts: everything the tree passes need from
 * one file, extracted in a single scrub+tokenize visit. Facts are a
 * pure function of (path, file bytes, companion-header bytes), which
 * is what makes them cacheable by content hash and the parallel lint
 * deterministic — cross-file analysis happens later, over the facts
 * alone, in sorted path order.
 */

#ifndef QMH_TOOLS_LINT_INTERNAL_HH
#define QMH_TOOLS_LINT_INTERNAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qmh_lint/lint.hh"

namespace qmh {
namespace lint {
namespace detail {

/** One `#include "..."` directive (quoted form only — the module
 * graph is over project headers; system includes are the
 * banned-headers rule's business). */
struct IncludeEdge
{
    std::string header;  ///< as written, e.g. "api/spec.hh"
    int line = 0;
};

/** A call discarded as a bare expression-statement: `foo(...);` with
 * no use of the result. Candidates only — the tree pass intersects
 * them with the global Outcome-function index. */
struct BareCall
{
    std::string name;  ///< callee identifier (last of any ::-chain)
    int line = 0;
};

/** An `allow(rule)` marker for a whole-tree rule, deferred to the
 * tree pass (only it can tell used from stale). */
struct TreeSuppression
{
    std::string rule;
    int comment_line = 0;
    int target_line = 0;
};

/** Everything the whole-tree passes need from one file. */
struct FileFacts
{
    std::string path;
    std::uint64_t hash = 0;  ///< content hash incl. companion header

    /** Per-file rule findings, suppression-resolved. */
    std::vector<Diagnostic> local_diags;

    std::vector<IncludeEdge> includes;
    /** Function names declared returning Outcome<...>. */
    std::vector<std::string> outcome_decls;
    /** Function names declared with any other return type — used to
     * drop ambiguous names (declared both ways somewhere in the
     * tree) from the unchecked-outcome index, because a token-level
     * call site cannot type its receiver. */
    std::vector<std::string> plain_decls;
    std::vector<BareCall> bare_calls;
    std::vector<TreeSuppression> tree_suppressions;

    bool io_error = false;  ///< file could not be read
};

/** FNV-1a 64 over @p text (the facts-cache content hash). */
std::uint64_t contentHash(std::string_view text);

/** Canonical report order: (file, line, rule, message), deduped. */
void sortUniqueDiagnostics(std::vector<Diagnostic> &diagnostics);

/** Raw bytes of a file plus its companion header (same stem, .hh/.h;
 * empty when the file is a header or has no companion). */
struct FileInput
{
    std::string text;
    std::string header_text;
    bool ok = false;  ///< the file itself was readable
};

/** Read @p path and its companion header from disk. */
FileInput readFileInput(const std::string &path);

/** The facts-cache key for @p input: content hash of the file folded
 * with the companion header's (facts depend on both). */
std::uint64_t inputHash(const FileInput &input);

/** analyzeText over already-read bytes; @p input.ok must be true. */
FileFacts analyzeInput(const std::string &path,
                       const FileInput &input);

/**
 * Extract facts from @p text as the file @p policy_path.
 * @p header_names seeds ordered-iteration with unordered-container
 * members declared in the companion header; @p header_hash folds the
 * companion's bytes into the content hash (facts depend on both).
 */
FileFacts analyzeText(std::string_view policy_path,
                      std::string_view text,
                      const std::vector<std::string> &header_names,
                      std::uint64_t header_hash);

/** analyzeText over a file from disk, companion header included.
 * Unreadable files come back with io_error set and an "io-error"
 * diagnostic. */
FileFacts analyzeFile(const std::string &path);

/** One JSONL cache line for @p facts (no trailing newline). */
std::string factsToJson(const FileFacts &facts);

/** Inverse of factsToJson; false on malformed input (the caller
 * treats that entry as a cache miss). */
bool factsFromJson(const std::string &line, FileFacts &facts);

} // namespace detail
} // namespace lint
} // namespace qmh

#endif // QMH_TOOLS_LINT_INTERNAL_HH
