/**
 * @file
 * qmh-lint: project-specific static analysis enforcing the
 * determinism and typed-error contracts (ISSUE 6).
 *
 * The reproduction's central promise — bit-identical rows for a given
 * (spec, seed) on any thread count, across processes and the result
 * cache — rests on invariants the compiler cannot see:
 *
 *  - no-wallclock       simulation code never reads a clock or an
 *                       entropy source (std::chrono::*_clock::now,
 *                       time(), std::random_device, ...);
 *  - no-raw-rand        all randomness flows through the seeded
 *                       qmh::Random (no std::rand, no naked std
 *                       engines such as std::mt19937);
 *  - ordered-iteration  no range-for over std::unordered_map/set in
 *                       code that emits rows, persists caches or
 *                       builds schedules — hash order must never
 *                       reach an output channel;
 *  - typed-errors       src/api and src/server request paths return
 *                       Outcome instead of panicking/throwing/exiting;
 *  - banned-headers     headers that exist only to break the rules
 *                       above (<ctime>, <random>, ...) stay out.
 *
 * The analysis is a comment/string-stripping tokenizer plus token
 * pattern rules: deliberately simple, zero-dependency and fast enough
 * to run on every ctest invocation. It is heuristic, so every rule
 * supports inline suppression:
 *
 *     // qmh-lint: allow(<rule-id>): <one-line justification>
 *
 * placed on the offending line or alone on the line above. The
 * justification is mandatory (bad-suppression otherwise) and a
 * suppression that matches nothing is itself reported
 * (unused-suppression), so stale allowances expire loudly.
 */

#ifndef QMH_TOOLS_LINT_HH
#define QMH_TOOLS_LINT_HH

#include <string>
#include <string_view>
#include <vector>

namespace qmh {
namespace lint {

/** One finding, addressed as file:line with a stable rule id. */
struct Diagnostic
{
    std::string file;     ///< path as given to the linter
    int line = 0;         ///< 1-based line of the finding
    std::string rule;     ///< stable rule id ("no-wallclock", ...)
    std::string message;  ///< what was found
    std::string hint;     ///< how to fix (or legitimately suppress) it

    /** "file:line: [rule] message (hint)" */
    std::string format() const;
};

/** Result of linting one file or a whole tree. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    std::size_t files_scanned = 0;

    bool clean() const { return diagnostics.empty(); }
};

/** Stable ids of every rule, in documentation order. */
const std::vector<std::string> &ruleNames();

/** One-line description of @p rule; nullptr for unknown ids. */
const char *ruleDescription(std::string_view rule);

/**
 * Lint @p text as if it were the file @p policy_path. The path picks
 * the per-directory policy (typed-errors only under src/api/ and
 * src/server/, no-raw-rand waived inside the sanctioned
 * src/common/random home), so tests can label fixture content into
 * any policy domain.
 */
Report lintText(std::string_view policy_path, std::string_view text);

/**
 * Lint one file from disk (policy from its path). For a .cc/.cpp the
 * companion header (same stem, .hh or .h) is also scanned for
 * unordered-container member names, so a map declared in foo.hh and
 * range-for'd in foo.cc is still caught by ordered-iteration.
 */
Report lintFile(const std::string &path);

/**
 * Recursively lint every C++ source under @p roots (.cc/.hh/.cpp/.h).
 * Directories named "lint_fixtures" are skipped: fixtures contain
 * intentional violations and are linted explicitly by the self-tests.
 * Files are visited in sorted path order so output is deterministic.
 */
Report lintTree(const std::vector<std::string> &roots);

} // namespace lint
} // namespace qmh

#endif // QMH_TOOLS_LINT_HH
