/**
 * @file
 * qmh-lint: project-specific static analysis enforcing the
 * determinism, typed-error and architecture contracts.
 *
 * The reproduction's central promise — bit-identical rows for a given
 * (spec, seed) on any thread count, across processes and the result
 * cache — rests on invariants the compiler cannot see. The analyzer
 * has two tiers:
 *
 * Per-file token rules (a comment/string-stripping tokenizer plus
 * pattern matching; lintText/lintFile):
 *
 *  - no-wallclock       simulation code never reads a clock or an
 *                       entropy source (std::chrono::*_clock::now,
 *                       time(), std::random_device, ...);
 *  - no-raw-rand        all randomness flows through the seeded
 *                       qmh::Random (no std::rand, no naked std
 *                       engines such as std::mt19937);
 *  - ordered-iteration  no range-for over std::unordered_map/set in
 *                       code that emits rows, persists caches or
 *                       builds schedules — hash order must never
 *                       reach an output channel;
 *  - typed-errors       src/api and src/server request paths return
 *                       Outcome instead of panicking/throwing/exiting;
 *  - banned-headers     headers that exist only to break the rules
 *                       above (<ctime>, <random>, ...) stay out;
 *  - lock-discipline    src/server and src/sweep never make a
 *                       blocking call (poll/read/write/wait/simulate/
 *                       runSpecSweep/->run()) while a lock_guard /
 *                       unique_lock / scoped_lock is live in an
 *                       enclosing scope (condition-variable waits ON
 *                       the lock are the sanctioned exception).
 *
 * Whole-tree passes (lintTree only — they need every file's facts):
 *
 *  - layering           the #include graph over the src/ modules
 *                       respects the declared layer policy: no upward
 *                       includes, no forbidden cross-layer skips, no
 *                       include cycles;
 *  - unchecked-outcome  a call to any function the tree declares as
 *                       returning Outcome<...> is never discarded as
 *                       a bare expression-statement.
 *
 * The tree engine gets production treatment: files are linted in
 * parallel on the sweep::ThreadPool with diagnostics merged in
 * sorted-path order (bit-identical output at 1 or N threads — the
 * same contract as sweeps), per-file facts are memoized in a
 * content-hash JSONL cache (a warm re-lint of an unchanged tree
 * parses zero files), and reports can be emitted as SARIF 2.1.0 for
 * CI code-scanning annotations.
 *
 * Every rule is heuristic, so each supports inline suppression:
 *
 *     // qmh-lint: allow(<rule-id>): <one-line justification>
 *
 * placed on the offending line or alone on the line above. The
 * justification is mandatory (bad-suppression otherwise) and a
 * suppression that matches nothing is itself reported
 * (unused-suppression), so stale allowances expire loudly.
 */

#ifndef QMH_TOOLS_LINT_HH
#define QMH_TOOLS_LINT_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace qmh {
namespace lint {

/** One finding, addressed as file:line with a stable rule id. */
struct Diagnostic
{
    std::string file;     ///< path as given to the linter
    int line = 0;         ///< 1-based line of the finding
    std::string rule;     ///< stable rule id ("no-wallclock", ...)
    std::string message;  ///< what was found
    std::string hint;     ///< how to fix (or legitimately suppress) it

    /** "file:line: [rule] message (hint)" */
    std::string format() const;
};

/** Result of linting one file or a whole tree. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    std::size_t files_scanned = 0;  ///< files visited this run
    std::size_t files_parsed = 0;   ///< tokenized + analyzed fresh
    std::size_t files_cached = 0;   ///< facts served from the cache

    bool clean() const { return diagnostics.empty(); }
};

/** Stable ids of every rule, in documentation order. */
const std::vector<std::string> &ruleNames();

/** One-line description of @p rule; nullptr for unknown ids. */
const char *ruleDescription(std::string_view rule);

/**
 * Lint @p text as if it were the file @p policy_path, per-file rules
 * only. The path picks the per-directory policy (typed-errors only
 * under src/api/ and src/server/, lock-discipline under src/server/
 * and src/sweep/, no-raw-rand waived inside the sanctioned
 * src/common/random home), so tests can label fixture content into
 * any policy domain. Whole-tree rules (layering, unchecked-outcome)
 * need every file's facts and only run under lintTree.
 */
Report lintText(std::string_view policy_path, std::string_view text);

/**
 * Lint one file from disk (policy from its path), per-file rules
 * only. For a .cc/.cpp the companion header (same stem, .hh or .h)
 * is also scanned for unordered-container member names, so a map
 * declared in foo.hh and range-for'd in foo.cc is still caught by
 * ordered-iteration.
 */
Report lintFile(const std::string &path);

/** Options for whole-tree analysis. */
struct TreeOptions
{
    /** Worker threads; 0 = one per hardware thread. The report is
     * bit-identical at any thread count. */
    unsigned threads = 0;
    /** JSONL facts-cache path; empty = no incremental cache. The
     * cache is keyed on (path, content hash incl. companion header)
     * and rewritten wholesale after every run. */
    std::string cache_path;
    /** Layer policy text (see defaultLayerPolicy() for the format);
     * empty = the built-in policy over the src/ modules. */
    std::string layer_policy;
};

/**
 * The built-in layer policy. Format, line by line ('#' comments):
 *
 *     layer <module>...    one tier per line, bottom tier first; a
 *                          module may include its own tier and any
 *                          tier below it
 *     forbid <from>: <to>...  ban specific downward skip edges (the
 *                          facade-bypass discipline)
 *
 * Upward includes, forbidden edges and include cycles among the
 * declared modules are "layering" findings.
 */
const char *defaultLayerPolicy();

/**
 * Recursively lint every C++ source under @p roots (.cc/.hh/.cpp/.h):
 * the per-file rules plus the whole-tree passes (layering over the
 * include graph, unchecked-outcome over the Outcome function index).
 * Directories named "lint_fixtures" are skipped: fixtures contain
 * intentional violations and are linted explicitly by the self-tests.
 * Files are processed in parallel but merged in sorted path order, so
 * the report is deterministic and thread-count independent.
 */
Report lintTree(const std::vector<std::string> &roots,
                const TreeOptions &options);

/** lintTree with default options (all hardware threads, no cache). */
Report lintTree(const std::vector<std::string> &roots);

/**
 * The report as a SARIF 2.1.0 document (one run, one result per
 * diagnostic, rule metadata from the registry) for CI code-scanning
 * upload. Deterministic: same report, same bytes.
 */
std::string toSarif(const Report &report);

} // namespace lint
} // namespace qmh

#endif // QMH_TOOLS_LINT_HH
