#!/bin/sh
# Record a benchmark baseline into the repo's perf trajectory.
#
# Usage: tools/bench_record.sh <build-dir> <bench> <pr>
#
#   build-dir  CMake build tree to run from (must be Release)
#   bench      trajectory name: trace | memory | service
#              (or the binary name: bench_trace, bench_memory,
#              bench_server)
#   pr         PR number stamped into the baseline's "pr" field
#
# Runs the bench with --benchmark_out (the artifact printers write to
# stdout, so the JSON must go through a file, never a pipe), injects
# the "pr" field, and rewrites the matching BENCH_<name>.json at the
# repo root.
#
# Refuses non-Release trees: a Debug recording is not a baseline, and
# the google-benchmark context can't tell you — its
# "library_build_type" reflects how the *benchmark library* was
# compiled (the distro package reports "debug"), not this repo's
# flags. The only trustworthy source is the build tree's own
# CMakeCache.txt.

set -eu

usage() {
    echo "usage: $0 <build-dir> <trace|memory|service> <pr>" >&2
    exit 2
}

[ $# -eq 3 ] || usage
build=$1
bench=$2
pr=$3

case $bench in
  trace|bench_trace)     bin=bench_trace  out=BENCH_trace.json ;;
  memory|bench_memory)   bin=bench_memory out=BENCH_memory.json ;;
  service|bench_server)  bin=bench_server out=BENCH_service.json ;;
  *) echo "$0: unknown bench '$bench'" >&2; usage ;;
esac

cache="$build/CMakeCache.txt"
if [ ! -f "$cache" ]; then
    echo "$0: $build is not a CMake build tree (no CMakeCache.txt)" >&2
    exit 1
fi
if ! grep -q '^CMAKE_BUILD_TYPE:STRING=Release$' "$cache"; then
    echo "$0: refusing to record a baseline from a non-Release build" >&2
    echo "    ($cache says: $(grep '^CMAKE_BUILD_TYPE' "$cache" || echo 'CMAKE_BUILD_TYPE unset'))" >&2
    exit 1
fi
if [ ! -x "$build/$bin" ]; then
    echo "$0: $build/$bin not built" >&2
    exit 1
fi

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== recording $bin -> $out (pr $pr) =="
(cd "$build" && "./$bin" --benchmark_out="$tmp" \
                         --benchmark_out_format=json > /dev/null)

python3 - "$tmp" "$repo/$out" "$pr" <<'EOF'
import json, sys
path, out, pr = sys.argv[1], sys.argv[2], int(sys.argv[3])
data = json.load(open(path))
# "pr" leads the object so the trajectory diff is the first line.
stamped = {"pr": pr}
stamped.update(data)
with open(out, "w") as f:
    json.dump(stamped, f, indent=2)
    f.write("\n")
EOF

echo "wrote $out"
